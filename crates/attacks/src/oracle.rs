//! The activated-IC oracle of the threat model.
//!
//! The attacker owns an unlocked chip (correct key burned into tamper-proof
//! memory) and can apply inputs / observe outputs — for the combinational
//! threat model, through the scan interface. When the design carries the
//! Scan-Enable obfuscation, every scan access asserts `SE`, so the
//! responses the attacker records are corrupted by the hidden `MTJ_SE`
//! keys (paper Section III-C); normal functional operation (`SE = 0`) is
//! not observable bit-exactly by the attacker.

use ril_core::{LockedCircuit, SE_PIN};
use ril_netlist::{GateKind, Netlist, NetlistError, Simulator};

/// Query-counting black-box oracle over an activated chip.
#[derive(Debug, Clone)]
pub struct Oracle {
    netlist: Netlist,
    sim: Simulator,
    key_words: Vec<u64>,
    has_se: bool,
    scan_corrupted: bool,
    queries: u64,
}

impl Oracle {
    /// Builds the oracle from a locked circuit (netlist + correct key).
    /// If the design has an `SE` pin, attack queries via
    /// [`Oracle::query`] assert it — the defense in action.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn new(locked: &LockedCircuit) -> Result<Oracle, NetlistError> {
        let sim = Simulator::new(&locked.netlist)?;
        Ok(Oracle {
            netlist: locked.netlist.clone(),
            sim,
            key_words: locked.keys.as_words(),
            has_se: locked.netlist.net_id(SE_PIN).is_some(),
            scan_corrupted: true,
            queries: 0,
        })
    }

    /// Disables the scan-corruption model (an idealized attacker with
    /// direct functional access — used to show the attacks *do* work when
    /// the SE defense is absent).
    pub fn without_scan_corruption(mut self) -> Oracle {
        self.scan_corrupted = false;
        self
    }

    /// Number of data inputs the oracle expects per query (excluding the
    /// SE pin).
    pub fn input_width(&self) -> usize {
        self.netlist.data_inputs().len() - usize::from(self.has_se)
    }

    /// Number of outputs per response.
    pub fn output_width(&self) -> usize {
        self.netlist.outputs().len()
    }

    /// Applies one input pattern through the scan interface and returns
    /// the response. With the SE defense present and corruption enabled,
    /// `SE = 1` during the access.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_width()`.
    pub fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.input_width(), "oracle input width");
        self.queries += 1;
        let mut data: Vec<u64> = inputs
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        if self.has_se {
            data.push(if self.scan_corrupted { u64::MAX } else { 0 });
        }
        self.sim
            .eval_words(&self.netlist, &data, &self.key_words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Ground-truth functional response (`SE = 0`) — available to the
    /// evaluation harness, *not* to attacks.
    pub fn functional_response(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.input_width(), "oracle input width");
        let mut data: Vec<u64> = inputs
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        if self.has_se {
            data.push(0);
        }
        self.sim
            .eval_words(&self.netlist, &data, &self.key_words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Queries issued so far (scan queries only).
    pub fn queries(&self) -> u64 {
        self.queries
    }
}

/// The attacker's reverse-engineered netlist view.
///
/// The Scan-Enable circuitry lives *inside* the analog MRAM LUT (an extra
/// MTJ and a transmission-gate MUX), so layout reverse engineering shows a
/// plain LUT: the attacker's netlist has the SE path absent. We model this
/// by tying the `SE` pin to constant 0, which makes every SE-XOR stage
/// transparent (and the hidden `K_SE` key bits unobservable).
pub fn attacker_view(locked: &LockedCircuit) -> Netlist {
    let mut nl = locked.netlist.clone();
    if let Some(se) = nl.net_id(SE_PIN) {
        let zero = nl.fresh_net("se_tied");
        nl.add_gate(GateKind::Const0, &[], zero)
            .expect("fresh net is undriven");
        let redirected = nl.redirect_consumers(se, zero);
        debug_assert!(redirected > 0 || locked.blocks == 0);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_core::{Obfuscator, RilBlockSpec};
    use ril_netlist::generators;

    fn locked(scan: bool) -> LockedCircuit {
        let host = generators::adder(6);
        Obfuscator::new(RilBlockSpec::size_8x8())
            .scan_obfuscation(scan)
            .seed(13)
            .obfuscate(&host)
            .unwrap()
    }

    #[test]
    fn oracle_matches_original_without_scan_defense() {
        let lc = locked(false);
        let mut oracle = Oracle::new(&lc).unwrap();
        let mut sim = Simulator::new(&lc.original).unwrap();
        for pattern in [0u64, 5, 63, 4095] {
            let bits: Vec<bool> = (0..oracle.input_width())
                .map(|i| (pattern >> i) & 1 == 1)
                .collect();
            let resp = oracle.query(&bits);
            let expect = sim.eval_bits(&lc.original, &bits);
            assert_eq!(resp, expect);
        }
        assert_eq!(oracle.queries(), 4);
    }

    #[test]
    fn scan_defense_corrupts_some_response() {
        // Find a seed whose SE keys are not all zero, then at least one
        // input pattern must answer differently in scan vs functional mode.
        for seed in 0..20 {
            let host = generators::adder(6);
            let lc = Obfuscator::new(RilBlockSpec::size_8x8())
                .scan_obfuscation(true)
                .seed(seed)
                .obfuscate(&host)
                .unwrap();
            let any_se = lc
                .keys
                .kinds()
                .iter()
                .zip(lc.keys.bits())
                .any(|(k, &v)| matches!(k, ril_core::KeyBitKind::ScanEnable { .. }) && v);
            if !any_se {
                continue;
            }
            let mut oracle = Oracle::new(&lc).unwrap();
            let w = oracle.input_width();
            let mut corrupted = false;
            for pattern in 0u64..256 {
                let bits: Vec<bool> = (0..w).map(|i| (pattern >> i) & 1 == 1).collect();
                if oracle.query(&bits) != oracle.functional_response(&bits) {
                    corrupted = true;
                    break;
                }
            }
            assert!(corrupted, "seed {seed}: SE key set but responses clean");
            return;
        }
        panic!("no seed produced a set SE key");
    }

    #[test]
    fn disabling_corruption_restores_functional_responses() {
        let lc = locked(true);
        let mut honest = Oracle::new(&lc).unwrap().without_scan_corruption();
        let w = honest.input_width();
        for pattern in 0u64..64 {
            let bits: Vec<bool> = (0..w).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(honest.query(&bits), honest.functional_response(&bits));
        }
    }

    #[test]
    fn attacker_view_hides_se_behaviour() {
        let lc = locked(true);
        let view = attacker_view(&lc);
        view.validate().unwrap();
        // Same I/O widths as the locked netlist (SE pin still declared).
        assert_eq!(view.inputs().len(), lc.netlist.inputs().len());
        // Under the correct key the view equals the functional circuit even
        // with SE pin driven high — the XOR stages are tied off.
        let mut sim_view = Simulator::new(&view).unwrap();
        let mut sim_orig = Simulator::new(&lc.original).unwrap();
        let kw = lc.keys.as_words();
        let n = lc.original.data_inputs().len();
        for pattern in [1u64, 77, 1023] {
            let data: Vec<u64> = (0..n)
                .map(|i| if (pattern >> i) & 1 == 1 { u64::MAX } else { 0 })
                .collect();
            let mut dv = data.clone();
            dv.push(u64::MAX); // SE pin high — must not matter in the view
            let o1 = sim_orig.eval_words(&lc.original, &data, &[]);
            let o2 = sim_view.eval_words(&view, &dv, &kw);
            assert_eq!(o1, o2);
        }
    }
}
