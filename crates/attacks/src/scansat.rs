//! ScanSAT-style modelling attack and the scan-and-shift discussion.
//!
//! ScanSAT (Alrahis et al.) breaks *scan-chain* obfuscation by folding the
//! response transformation into the SAT model: if scan responses are the
//! true outputs XOR-ed with a static key-controlled mask, per-output
//! inversion key variables absorb the mask and the plain SAT attack runs
//! through. [`scansat_model_attack`] implements exactly that model.
//!
//! It succeeds against a classic output-inversion scan lock
//! ([`output_inversion_lock`]) but not against the RIL Scan-Enable cell:
//! there the inversion happens at an *internal* LUT output and diffuses
//! through downstream logic, so no per-output mask is consistent with the
//! oracle (paper Section IV-C: an OR whose response is negated by SE is
//! indistinguishable from a NOR, and neither hypothesis survives all
//! patterns once the corruption mixes into wider cones).

use crate::oracle::{attacker_view, Oracle, OracleSource};
use crate::report::{AttackReport, AttackResult};
use crate::satattack::SatAttackConfig;
use crate::session::{AttackSession, DipStep};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ril_core::key::{KeyBitKind, KeyStore};
use ril_core::{LockedCircuit, RilBlockSpec, SE_PIN};
use ril_netlist::{GateKind, Netlist, NetlistError};
use ril_sat::Lit;

/// A classic scan-response obfuscation baseline: each primary output is
/// XOR-ed with `SE ∧ k_i` for a hidden static key bit — inversion *at the
/// scan boundary*, the construction ScanSAT was designed to break.
///
/// # Errors
///
/// Propagates netlist errors.
pub fn output_inversion_lock(original: &Netlist, seed: u64) -> Result<LockedCircuit, NetlistError> {
    let mut nl = original.clone();
    nl.set_name(format!("{}_scanlock", original.name()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys = KeyStore::new();
    let se = nl.add_input(SE_PIN)?;
    let outputs: Vec<_> = nl.outputs().to_vec();
    for out in outputs {
        let kbit: bool = rng.gen();
        let knet = nl.add_key_input(format!("keyinput{}", keys.len()))?;
        keys.push(KeyBitKind::Baseline, kbit);
        let gate_se = nl.add_gate_fresh(GateKind::And, &[se, knet], "slk")?;
        let spliced = nl.fresh_net("slo");
        nl.redirect_consumers(out, spliced);
        nl.add_gate(GateKind::Xor, &[out, gate_se], spliced)?;
    }
    Ok(LockedCircuit {
        original: original.clone(),
        netlist: nl,
        keys,
        spec: RilBlockSpec {
            width: 2,
            double_routing: false,
            scan_obfuscation: true,
        },
        blocks: 0,
        block_meta: Vec::new(),
    })
}

/// Runs the ScanSAT model: the attacker augments his netlist view with one
/// hypothetical inversion key per primary output (`out ⊕ m_i`), then
/// drives the incremental [`AttackSession`] directly — one persistent
/// miter/finder pair for the whole DIP loop, nothing rebuilt per
/// iteration. On convergence the warm finder is first solved *under the
/// assumption that every mask bit is 0* (the no-boundary-inversion
/// hypothesis, which yields the cleanest key when the target has no scan
/// masking), falling back to an unconstrained extraction when a mask is
/// genuinely required. The recovered key is truncated back to the real key
/// bits for the ground-truth functional check.
///
pub(crate) fn scansat_attack_impl(
    locked: &LockedCircuit,
    cfg: &SatAttackConfig,
) -> Result<AttackReport, NetlistError> {
    let mut span = ril_trace::span("scansat", ril_trace::Phase::Attack);
    let report = scansat_attack_inner(locked, cfg)?;
    if span.is_active() {
        span.record_str("result", report.result.kind());
        span.record_u64("iterations", report.iterations as u64);
        span.record_u64("oracle_queries", report.oracle_queries);
        ril_trace::counter("attack.runs", 1);
    }
    Ok(report)
}

/// Runs the ScanSAT model against an attacker-view netlist and an oracle
/// source: the per-output inversion hypothesis is added to a copy of the
/// view and the recovered key is truncated back to the view's real key
/// bits. The report's `functionally_correct` is left `None` (an attacker
/// on a remote oracle has no ground truth).
///
/// # Errors
///
/// Propagates netlist-augmentation failures.
pub fn scansat_model_attack(
    base_view: &Netlist,
    oracle: &mut dyn OracleSource,
    cfg: &SatAttackConfig,
) -> Result<AttackReport, NetlistError> {
    let mut view = base_view.clone();
    let real_key_width = view.key_inputs().len();
    // Hypothesis: scan responses are output-masked. Add mask key vars.
    let outputs: Vec<_> = view.outputs().to_vec();
    for (i, out) in outputs.into_iter().enumerate() {
        let m = view.add_key_input(format!("scansat_m{i}"))?;
        let spliced = view.fresh_net("ssm");
        view.redirect_consumers(out, spliced);
        view.add_gate(GateKind::Xor, &[out, m], spliced)?;
    }
    let mut sess = AttackSession::new(
        &view,
        oracle,
        cfg.solver.clone(),
        None,
        cfg.timeout,
        cfg.max_iterations,
    );

    let outcome = loop {
        match sess.step(oracle) {
            DipStep::Distinguished => {}
            DipStep::Budget => break AttackResult::Timeout,
            DipStep::OracleInconsistent => {
                break AttackResult::Failed(
                    "scan oracle contradicts key-independent logic (model/oracle mismatch)".into(),
                )
            }
            DipStep::OracleFailed(e) => break AttackResult::Failed(format!("oracle failure: {e}")),
            DipStep::Converged => {
                let no_mask: Vec<Lit> = sess.inst.keyf[real_key_width..]
                    .iter()
                    .map(|v| v.negative())
                    .collect();
                break match sess.extract_key_under(&no_mask) {
                    Ok(Some(key)) => AttackResult::ExactKey(key),
                    // No key works without a mask — let the masks float.
                    Ok(None) => match sess.extract_key() {
                        Ok(Some(key)) => AttackResult::ExactKey(key),
                        Ok(None) => AttackResult::Failed(
                            "no key/mask pair is consistent with the scan oracle".into(),
                        ),
                        Err(()) => AttackResult::Timeout,
                    },
                    Err(()) => AttackResult::Timeout,
                };
            }
        }
    };
    let mut report = sess.report(oracle, outcome);

    // Truncate the hypothetical mask bits off the recovered key.
    if let Some(key) = report.result.key() {
        let real: Vec<bool> = key[..real_key_width].to_vec();
        report.result = match report.result {
            AttackResult::ExactKey(_) => AttackResult::ExactKey(real),
            AttackResult::ApproxKey { est_error, .. } => AttackResult::ApproxKey {
                key: real,
                est_error,
            },
            other => other,
        };
    }
    Ok(report)
}

fn scansat_attack_inner(
    locked: &LockedCircuit,
    cfg: &SatAttackConfig,
) -> Result<AttackReport, NetlistError> {
    let view = attacker_view(locked);
    let mut oracle = Oracle::new(locked)?;
    let mut report = scansat_model_attack(&view, &mut oracle, cfg)?;

    // Ground-truth functional check on the real key (harness only).
    if let Some(key) = report.result.key() {
        let _v = ril_trace::span("verify_key", ril_trace::Phase::Verify);
        let real = key.to_vec();
        let ok = locked.equivalent_under_key(&real, 32)?;
        report.functionally_correct = Some(ok);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_core::{Obfuscator, RilBlockSpec};
    use ril_netlist::generators;
    use std::time::Duration;

    fn fast_cfg() -> SatAttackConfig {
        SatAttackConfig {
            timeout: Some(Duration::from_secs(30)),
            ..SatAttackConfig::default()
        }
    }

    #[test]
    fn output_inversion_lock_behaves() {
        let host = generators::adder(6);
        let locked = output_inversion_lock(&host, 3).unwrap();
        locked.netlist.validate().unwrap();
        // Functional mode (SE = 0): equivalent under any key? No — under
        // the correct key, and also under wrong keys since SE gates it.
        assert!(locked.verify(16).unwrap());
        // Scan mode corrupts when a key bit is 1.
        let mut oracle = Oracle::new(&locked).unwrap();
        let w = oracle.input_width();
        let any_key = locked.keys.bits().iter().any(|&b| b);
        if any_key {
            let mut corrupted = false;
            for p in 0u64..64 {
                let bits: Vec<bool> = (0..w).map(|i| (p >> i) & 1 == 1).collect();
                if oracle.query(&bits) != oracle.functional_response(&bits) {
                    corrupted = true;
                    break;
                }
            }
            assert!(corrupted);
        }
    }

    #[test]
    fn scansat_breaks_boundary_inversion_lock() {
        let host = generators::adder(6);
        let locked = output_inversion_lock(&host, 5).unwrap();
        let report = scansat_attack_impl(&locked, &fast_cfg()).unwrap();
        assert!(report.result.succeeded(), "{report}");
        assert_eq!(report.functionally_correct, Some(true), "{report}");
    }

    #[test]
    fn scansat_fails_against_ril_scan_enable() {
        // The SE inversion sits inside logic cones, so the per-output mask
        // hypothesis cannot reproduce the oracle: the attack fails, times
        // out, or returns a functionally wrong key.
        for seed in 0..20 {
            let host = generators::multiplier(5);
            let locked = Obfuscator::new(RilBlockSpec::size_2x2())
                .blocks(3)
                .scan_obfuscation(true)
                .seed(seed)
                .obfuscate(&host)
                .unwrap();
            let se_set = locked
                .keys
                .kinds()
                .iter()
                .zip(locked.keys.bits())
                .any(|(k, &v)| matches!(k, KeyBitKind::ScanEnable { .. }) && v);
            if !se_set {
                continue;
            }
            // Ensure at least one SE-keyed LUT is NOT directly at an
            // output (otherwise a boundary mask could absorb it).
            let report = scansat_attack_impl(&locked, &fast_cfg()).unwrap();
            let defeated = matches!(
                report.result,
                AttackResult::Failed(_) | AttackResult::Timeout
            ) || report.functionally_correct == Some(false);
            if defeated {
                return;
            }
        }
        panic!("ScanSAT succeeded against every seed — SE defense broken?");
    }
}
