//! Structure-sharing miter construction — the core machinery shared by the
//! SAT attack and AppSAT.
//!
//! Published SAT-attack implementations never duplicate the whole netlist:
//! every net that does not structurally depend on a key input has the same
//! value in both miter copies (inputs are shared), so only the
//! **key-dependent cones** are encoded twice. Likewise, each DIP's I/O
//! constraint is built by *simulating* the key-free logic once and encoding
//! only the key cones against those constants. Without this, the final
//! UNSAT phase would have to prove the equivalence of two independent
//! copies of the host (hopeless for multiplier-bearing hosts); with it,
//! instance hardness comes purely from the key logic — exactly the quantity
//! the paper's tables measure.

use ril_core::{LockedCircuit, SE_PIN};
use ril_netlist::{GateId, NetId, Netlist, Simulator};
use ril_sat::bva::one_hot_selection;
use ril_sat::tseitin::encode_selected;
use ril_sat::{encode_netlist_into, Budget, Cnf, Lit, Outcome, Session, SolverConfig, Var};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// The incremental state of one oracle-guided attack.
///
/// Both formulas live in persistent [`Session`]s constructed exactly once:
/// each DIP's constraint is encoded into a scratch [`Cnf`] (whose variable
/// pool mirrors the session's) and appended to the live solver, so learned
/// clauses, activity ordering and watch lists stay warm across the whole
/// DIP loop instead of being rebuilt per iteration.
pub(crate) struct AttackInstance {
    /// The distinguishing-input miter (`C(x,k1) ≠ C(x,k2)` + recorded I/O).
    pub(crate) miter: Session,
    /// The key finder (recorded I/O constraints only), solved for candidate
    /// and final keys.
    pub(crate) finder: Session,
    /// Scratch encoding buffers; clauses are moved into the sessions after
    /// each DIP, variable pools stay in lock-step with the sessions'.
    finder_cnf: Cnf,
    miter_cnf: Cnf,
    /// Shared data-input vars (netlist data-input order, incl. tied SE).
    pub(crate) input_vars: Vec<Var>,
    key1: Vec<Var>,
    key2: Vec<Var>,
    pub(crate) keyf: Vec<Var>,
    /// Positions within the data inputs that are real oracle inputs.
    pub(crate) oracle_positions: Vec<usize>,
    dependent_gates: HashSet<GateId>,
    dependent_nets: HashSet<NetId>,
    /// Constant rails of the miter and finder formulas.
    const_m: (Var, Var),
    const_f: (Var, Var),
    /// Key-generation guard literals (miter, finder). Every DIP's
    /// response-forcing clauses are conditioned on the guard of the oracle
    /// generation they were recorded under, so when the target morphs the
    /// stale constraints retire in O(1) — the old guard is falsified and
    /// the solvers keep their variable pools, learned clauses and
    /// heuristic state.
    guard_m: Lit,
    guard_f: Lit,
    /// Oracle key generation the current guards cover.
    generation: u64,
    /// DIP constraints recorded under the current generation.
    active_dips: usize,
    /// DIP constraints retired by generation bumps so far.
    retired_dips: usize,
    sim: Simulator,
}

impl AttackInstance {
    /// Builds the miter over the attacker-view netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no key inputs or is sequential.
    pub(crate) fn new(
        nl: &Netlist,
        solver_config: SolverConfig,
        one_hot_meta: Option<&LockedCircuit>,
    ) -> AttackInstance {
        let mut span = ril_trace::span("encode_miter", ril_trace::Phase::Encode);
        assert!(!nl.key_inputs().is_empty(), "netlist carries no key inputs");
        let data_inputs = nl.data_inputs();
        let key_inputs: Vec<NetId> = nl.key_inputs().to_vec();
        let oracle_positions: Vec<usize> = data_inputs
            .iter()
            .enumerate()
            .filter(|(_, n)| nl.net(**n).name() != SE_PIN)
            .map(|(i, _)| i)
            .collect();

        // Key-dependent cones, from the netlist's cached key analysis (one
        // BFS per key bit, shared with every other consumer of the cones).
        let key_analysis = nl.key_analysis();
        let mut dependent_gates: HashSet<GateId> = HashSet::new();
        for bit in 0..key_analysis.key_bits() {
            dependent_gates.extend(key_analysis.cone(bit).iter().copied());
        }
        let dependent_nets: HashSet<NetId> = dependent_gates
            .iter()
            .map(|&g| nl.gate(g).output())
            .collect();

        let mut miter_cnf = Cnf::new();
        let input_vars = miter_cnf.new_vars(data_inputs.len());
        let key1 = miter_cnf.new_vars(key_inputs.len());
        let key2 = miter_cnf.new_vars(key_inputs.len());

        // Copy 1: the full netlist.
        let mut pins1 = pin_map(&data_inputs, &input_vars);
        pins1.extend(pin_map(&key_inputs, &key1));
        let vars1 = encode_netlist_into(nl, &mut miter_cnf, &pins1).expect("combinational");

        // Copy 2: only the key-dependent cones; every other net shares
        // copy 1's variable.
        let mut pins2: HashMap<NetId, Var> = HashMap::new();
        for (id, _) in nl.nets() {
            if !dependent_nets.contains(&id) {
                pins2.insert(id, vars1.var(id));
            }
        }
        for (net, var) in key_inputs.iter().zip(&key2) {
            pins2.insert(*net, *var);
        }
        let map2 = encode_selected(nl, &mut miter_cnf, &pins2, |gid| {
            dependent_gates.contains(&gid)
        })
        .expect("combinational");

        // Optional one-layer one-hot routing re-encoding (both copies).
        if let Some(locked) = one_hot_meta {
            let lit1 = |n: NetId| vars1.lit(n);
            let lit2 = |n: NetId| {
                map2.get(&n)
                    .copied()
                    .unwrap_or_else(|| vars1.var(n))
                    .positive()
            };
            for meta in &locked.block_meta {
                for copy in 0..2 {
                    for (ports, lines) in [
                        (&meta.in_port_nets, &meta.in_line_nets),
                        (&meta.out_rail_nets, &meta.out_line_nets),
                    ] {
                        if ports.is_empty() {
                            continue;
                        }
                        let pl: Vec<Lit> = ports
                            .iter()
                            .map(|&n| if copy == 0 { lit1(n) } else { lit2(n) })
                            .collect();
                        let ll: Vec<Lit> = lines
                            .iter()
                            .map(|&n| if copy == 0 { lit1(n) } else { lit2(n) })
                            .collect();
                        one_hot_selection(&mut miter_cnf, &pl, &ll, true);
                    }
                }
            }
        }

        // Miter over the key-dependent outputs only (the rest are shared).
        let mut diff = Vec::new();
        for &o in nl.outputs() {
            if !dependent_nets.contains(&o) {
                continue;
            }
            let x = miter_cnf.new_var().positive();
            let a = vars1.lit(o);
            let b = map2[&o].positive();
            miter_cnf.add_clause([!x, a, b]);
            miter_cnf.add_clause([!x, !a, !b]);
            miter_cnf.add_clause([x, !a, b]);
            miter_cnf.add_clause([x, a, !b]);
            diff.push(x);
        }
        assert!(
            !diff.is_empty(),
            "no output depends on any key input — nothing to attack"
        );
        miter_cnf.add_clause(diff);

        // Constant rails + generation-0 DIP guard.
        let ct = miter_cnf.new_var();
        let cf = miter_cnf.new_var();
        miter_cnf.add_clause([ct.positive()]);
        miter_cnf.add_clause([cf.negative()]);
        let guard_m = miter_cnf.new_var().positive();

        // Finder formula: key vars + its own constant rails and guard.
        let mut finder_cnf = Cnf::new();
        let keyf = finder_cnf.new_vars(key_inputs.len());
        let ft = finder_cnf.new_var();
        let ff = finder_cnf.new_var();
        finder_cnf.add_clause([ft.positive()]);
        finder_cnf.add_clause([ff.negative()]);
        let guard_f = finder_cnf.new_var().positive();

        // Both solvers are constructed here, once; from now on clauses are
        // only ever *appended*. The CNFs degrade to scratch buffers.
        let miter = Session::from_cnf_with_config(&miter_cnf, solver_config.clone());
        let finder = Session::from_cnf_with_config(&finder_cnf, solver_config);
        miter_cnf.clear_clauses();
        finder_cnf.clear_clauses();
        if span.is_active() {
            span.record_u64("key_bits", key_inputs.len() as u64);
            span.record_u64("miter_vars", miter.num_vars() as u64);
            span.record_u64("dependent_gates", dependent_gates.len() as u64);
        }
        AttackInstance {
            miter,
            finder,
            finder_cnf,
            miter_cnf,
            input_vars,
            key1,
            key2,
            keyf,
            oracle_positions,
            dependent_gates,
            dependent_nets,
            const_m: (ct, cf),
            const_f: (ft, ff),
            guard_m,
            guard_f,
            generation: 0,
            active_dips: 0,
            retired_dips: 0,
            sim: Simulator::new(nl).expect("combinational"),
        }
    }

    /// Observes the oracle's key generation. On a bump (the target
    /// morphed), the DIP responses recorded so far may be stale — with
    /// Scan-Enable obfuscation a re-rolled `K_SE` changes every scan
    /// response, so keeping them could exclude *all* keys of the new
    /// generation. The old generation's guards are permanently falsified
    /// (the dead clauses are never satisfied again) and fresh guards are
    /// allocated through the scratch CNFs so their variable pools stay in
    /// lock-step with the sessions'. Returns how many DIP constraints
    /// were retired.
    pub(crate) fn observe_generation(&mut self, generation: u64) -> usize {
        if generation == self.generation {
            return 0;
        }
        self.generation = generation;
        if self.active_dips == 0 {
            // Nothing recorded under the old generation — reuse its
            // untouched guards.
            return 0;
        }
        let retired = self.active_dips;
        self.miter_cnf.add_clause([!self.guard_m]);
        self.guard_m = self.miter_cnf.new_var().positive();
        self.miter.append_cnf(&self.miter_cnf);
        self.miter_cnf.clear_clauses();
        self.finder_cnf.add_clause([!self.guard_f]);
        self.guard_f = self.finder_cnf.new_var().positive();
        self.finder.append_cnf(&self.finder_cnf);
        self.finder_cnf.clear_clauses();
        self.retired_dips += retired;
        self.active_dips = 0;
        ril_trace::counter("attack.dips_retired", retired as u64);
        retired
    }

    /// DIP constraints retired by generation bumps so far.
    #[cfg(test)]
    pub(crate) fn retired_dips(&self) -> usize {
        self.retired_dips
    }

    /// Solves the miter for a fresh DIP under the current generation's
    /// guard (retired generations' constraints stay inactive).
    pub(crate) fn solve_miter(&mut self) -> Outcome {
        self.miter.solve_under(&[self.guard_m])
    }

    /// Extracts the full data-input assignment (DIP) from the last SAT
    /// model.
    pub(crate) fn dip_from_model(&self) -> Vec<bool> {
        let model = self.miter.model();
        self.input_vars.iter().map(|v| model[v.index()]).collect()
    }

    /// Projects a full DIP onto the oracle's input pins.
    pub(crate) fn oracle_dip(&self, dip_full: &[bool]) -> Vec<bool> {
        self.oracle_positions.iter().map(|&p| dip_full[p]).collect()
    }

    /// Adds the I/O constraint `circuit(dip, K) = response` for the three
    /// key vectors (both miter copies and the finder), using simulation for
    /// all key-independent logic.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` when a key-independent output contradicts the
    /// oracle's response — no key can explain the oracle (the Scan-Enable
    /// defense manifests here).
    pub(crate) fn add_dip(
        &mut self,
        nl: &Netlist,
        dip_full: &[bool],
        response: &[bool],
    ) -> Result<(), ()> {
        let _span = ril_trace::span("encode_dip", ril_trace::Phase::Encode);
        // Baseline simulation with keys = 0: key-independent nets get their
        // true value.
        let data_words: Vec<u64> = dip_full
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        let key_words = vec![0u64; nl.key_inputs().len()];
        self.sim.eval_words(nl, &data_words, &key_words);

        // Consistency check on key-independent outputs.
        for (&o, &bit) in nl.outputs().iter().zip(response) {
            if !self.dependent_nets.contains(&o) && (self.sim.net_value(o) & 1 == 1) != bit {
                return Err(());
            }
        }

        // Miter copies: encode into the scratch CNF, then move the clauses
        // into the live session (clearing the scratch, keeping its pool).
        let (k1, k2) = (self.key1.clone(), self.key2.clone());
        for key_vars in [&k1, &k2] {
            self.encode_constraint_copy(nl, key_vars, response, true);
        }
        self.miter.append_cnf(&self.miter_cnf);
        self.miter_cnf.clear_clauses();
        // Finder, same scheme.
        let keyf = self.keyf.clone();
        self.encode_constraint_copy(nl, &keyf, response, false);
        self.finder.append_cnf(&self.finder_cnf);
        self.finder_cnf.clear_clauses();
        self.active_dips += 1;
        Ok(())
    }

    /// Encodes one key-cone copy against the current baseline simulation.
    fn encode_constraint_copy(
        &mut self,
        nl: &Netlist,
        key_vars: &[Var],
        response: &[bool],
        into_miter: bool,
    ) {
        let (cnf, (ct, cf), guard) = if into_miter {
            (&mut self.miter_cnf, self.const_m, self.guard_m)
        } else {
            (&mut self.finder_cnf, self.const_f, self.guard_f)
        };
        // Pin key-independent boundary nets to the simulated constants.
        let mut pinned: HashMap<NetId, Var> = HashMap::new();
        for &gid in &self.dependent_gates {
            for &inp in nl.gate(gid).inputs() {
                if !self.dependent_nets.contains(&inp) && !nl.is_key_input(inp) {
                    let value = self.sim.net_value(inp) & 1 == 1;
                    pinned.insert(inp, if value { ct } else { cf });
                }
            }
        }
        for (net, var) in nl.key_inputs().iter().zip(key_vars) {
            pinned.insert(*net, *var);
        }
        let map = encode_selected(nl, cnf, &pinned, |gid| self.dependent_gates.contains(&gid))
            .expect("combinational");
        // Force key-dependent outputs to the oracle response, conditioned
        // on the recording generation's guard (the cone encoding itself is
        // definitional and stays valid across morphs).
        for (&o, &bit) in nl.outputs().iter().zip(response) {
            if self.dependent_nets.contains(&o) {
                cnf.add_clause([!guard, map[&o].lit(!bit)]);
            }
        }
    }

    /// Solves the key-extraction formula on the *persistent* finder session
    /// (no rebuild — everything it learned over earlier extractions stays);
    /// `Some(key)` on success, `None` on UNSAT (no key consistent with the
    /// recorded responses), or `Err` on budget exhaustion.
    pub(crate) fn extract_key(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Option<Vec<bool>>, ()> {
        self.finder.set_budget(Budget::from_timeout(timeout));
        match self.finder.solve_under(&[self.guard_f]) {
            Outcome::Sat => {
                let model = self.finder.model();
                Ok(Some(self.keyf.iter().map(|v| model[v.index()]).collect()))
            }
            Outcome::Unsat => Ok(None),
            Outcome::Unknown => Err(()),
        }
    }

    /// Like [`AttackInstance::extract_key`], but under extra assumptions on
    /// the *same warm finder session* (nothing is rebuilt): `None` means no
    /// key satisfies the recorded responses *and* the assumptions — the
    /// caller may retry unconstrained. ScanSAT uses this to prefer the
    /// no-boundary-inversion hypothesis over its mask variables.
    pub(crate) fn extract_key_under(
        &mut self,
        assumptions: &[Lit],
        timeout: Option<Duration>,
    ) -> Result<Option<Vec<bool>>, ()> {
        self.finder.set_budget(Budget::from_timeout(timeout));
        let mut guarded = Vec::with_capacity(assumptions.len() + 1);
        guarded.push(self.guard_f);
        guarded.extend_from_slice(assumptions);
        match self.finder.solve_under(&guarded) {
            Outcome::Sat => {
                let model = self.finder.model();
                Ok(Some(self.keyf.iter().map(|v| model[v.index()]).collect()))
            }
            Outcome::Unsat => Ok(None),
            Outcome::Unknown => Err(()),
        }
    }
}

fn pin_map(nets: &[NetId], vars: &[Var]) -> HashMap<NetId, Var> {
    nets.iter().copied().zip(vars.iter().copied()).collect()
}
