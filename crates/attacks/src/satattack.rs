//! The oracle-guided SAT attack (Subramanyan et al., HOST 2015), updated
//! with a CaDiCaL-class CDCL backend — the adversary of the paper's
//! Tables I and III.
//!
//! The attack builds a structure-sharing *miter*: two key-dependent-cone
//! copies of the locked netlist over shared data inputs and shared
//! key-independent logic, constrained to disagree on at least one output.
//! Each satisfying assignment yields a Distinguishing Input Pattern (DIP);
//! the oracle's response is recorded as an I/O constraint on both key
//! vectors, pruning every key inconsistent with the activated chip. When
//! the miter goes UNSAT, all surviving keys are I/O-equivalent and one is
//! extracted.

use crate::oracle::{attacker_view, Oracle, OracleSource};
use crate::report::{AttackReport, AttackResult};
use crate::session::{AttackSession, DipStep};
use ril_core::LockedCircuit;
use ril_netlist::Netlist;
use ril_sat::SolverConfig;
use std::time::Duration;

/// SAT-attack configuration.
#[derive(Debug, Clone)]
pub struct SatAttackConfig {
    /// Total wall-clock budget (the paper uses 5 days; we default to the
    /// `RIL_TIMEOUT_SECS` environment variable or 60 s).
    pub timeout: Option<Duration>,
    /// Maximum DIP iterations.
    pub max_iterations: Option<usize>,
    /// Backend solver configuration.
    pub solver: SolverConfig,
    /// Add the one-layer one-hot re-encoding of every routing network
    /// (Section IV-B preprocessing). Requires block metadata, i.e. the
    /// [`crate::run_attack`] entry point.
    pub one_hot_routing: bool,
}

impl Default for SatAttackConfig {
    fn default() -> SatAttackConfig {
        SatAttackConfig {
            timeout: Some(default_timeout()),
            max_iterations: None,
            solver: SolverConfig::default(),
            one_hot_routing: false,
        }
    }
}

/// The default attack timeout: `RIL_TIMEOUT_SECS` env var, or 60 seconds.
pub fn default_timeout() -> Duration {
    std::env::var("RIL_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(60))
}

/// Runs the SAT attack against an attacker-view netlist and an oracle
/// source (in-process [`Oracle`] or a remote one).
///
/// The report's `functionally_correct` is left `None` (the attacker cannot
/// check it); use [`crate::run_attack`] for the full harness flow.
///
/// # Panics
///
/// Panics if the netlist has no key inputs or its data-input count does not
/// match the oracle.
pub fn sat_attack(
    nl: &Netlist,
    oracle: &mut dyn OracleSource,
    cfg: &SatAttackConfig,
) -> AttackReport {
    sat_attack_inner(nl, oracle, cfg, None)
}

pub(crate) fn sat_attack_inner(
    nl: &Netlist,
    oracle: &mut dyn OracleSource,
    cfg: &SatAttackConfig,
    one_hot_meta: Option<&LockedCircuit>,
) -> AttackReport {
    let mut span = ril_trace::span("satattack", ril_trace::Phase::Attack);
    let report = sat_attack_loop(nl, oracle, cfg, one_hot_meta);
    if span.is_active() {
        span.record_str("result", report.result.kind());
        span.record_u64("iterations", report.iterations as u64);
        span.record_u64("oracle_queries", report.oracle_queries);
        ril_trace::counter("attack.runs", 1);
    }
    report
}

fn sat_attack_loop(
    nl: &Netlist,
    oracle: &mut dyn OracleSource,
    cfg: &SatAttackConfig,
    one_hot_meta: Option<&LockedCircuit>,
) -> AttackReport {
    let mut sess = AttackSession::new(
        nl,
        oracle,
        cfg.solver.clone(),
        one_hot_meta,
        cfg.timeout,
        cfg.max_iterations,
    );

    loop {
        match sess.step(oracle) {
            DipStep::Distinguished => {}
            DipStep::Budget => return sess.report(oracle, AttackResult::Timeout),
            DipStep::OracleInconsistent => {
                return sess.report(
                    oracle,
                    AttackResult::Failed(
                        "oracle response contradicts key-independent logic \
                         (model/oracle mismatch)"
                            .into(),
                    ),
                )
            }
            DipStep::OracleFailed(e) => {
                return sess.report(oracle, AttackResult::Failed(format!("oracle failure: {e}")))
            }
            // Miter UNSAT: every surviving key is I/O-equivalent.
            DipStep::Converged => break,
        }
    }

    match sess.extract_key() {
        Ok(Some(key)) => sess.report(oracle, AttackResult::ExactKey(key)),
        Ok(None) => sess.report(
            oracle,
            AttackResult::Failed(
                "no key is consistent with the oracle's responses (model/oracle mismatch)".into(),
            ),
        ),
        Err(()) => sess.report(oracle, AttackResult::Timeout),
    }
}

/// Full harness flow behind [`crate::run_attack`]: builds the attacker
/// view and oracle from a locked circuit, runs the SAT attack, and checks
/// the recovered key for *true* functional equivalence (ground truth the
/// attacker lacks).
pub(crate) fn run_sat_attack_impl(
    locked: &LockedCircuit,
    cfg: &SatAttackConfig,
) -> Result<AttackReport, ril_netlist::NetlistError> {
    let view = attacker_view(locked);
    let mut oracle = Oracle::new(locked)?;
    let meta = cfg.one_hot_routing.then_some(locked);
    let mut report = sat_attack_inner(&view, &mut oracle, cfg, meta);
    if let Some(key) = report.result.key() {
        let _v = ril_trace::span("verify_key", ril_trace::Phase::Verify);
        let ok = locked.equivalent_under_key(key, 32)?;
        report.functionally_correct = Some(ok);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_core::baselines::{antisat_lock, sfll_lock, xor_lock};
    use ril_core::{Obfuscator, RilBlockSpec};
    use ril_netlist::generators;

    fn fast_cfg() -> SatAttackConfig {
        SatAttackConfig {
            timeout: Some(Duration::from_secs(30)),
            ..SatAttackConfig::default()
        }
    }

    #[test]
    fn breaks_xor_lock() {
        let host = generators::adder(8);
        let locked = xor_lock(&host, 12, 3).unwrap();
        let report = run_sat_attack_impl(&locked, &fast_cfg()).unwrap();
        assert!(report.result.succeeded(), "{report}");
        assert_eq!(report.functionally_correct, Some(true), "{report}");
    }

    #[test]
    fn breaks_small_ril_blocks_without_scan_defense() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .seed(5)
            .obfuscate(&host)
            .unwrap();
        let report = run_sat_attack_impl(&locked, &fast_cfg()).unwrap();
        assert!(report.result.succeeded(), "{report}");
        assert_eq!(report.functionally_correct, Some(true), "{report}");
        assert!(report.iterations >= 1);
    }

    #[test]
    fn report_carries_per_iteration_solver_stats() {
        let host = generators::adder(8);
        let locked = xor_lock(&host, 12, 3).unwrap();
        let report = run_sat_attack_impl(&locked, &fast_cfg()).unwrap();
        assert!(report.result.succeeded(), "{report}");
        // One miter solve per DIP plus the final UNSAT convergence proof.
        assert_eq!(report.iteration_stats.len(), report.iterations + 1);
        assert!(report
            .iteration_stats
            .iter()
            .enumerate()
            .all(|(i, it)| it.iteration == i + 1));
        // Per-iteration deltas add back up to the cumulative miter stats.
        let summed = report
            .iteration_stats
            .iter()
            .fold(ril_sat::SolverStats::default(), |acc, it| {
                acc.plus(&it.stats)
            });
        assert_eq!(summed, report.miter_stats);
        // The finder session did real work and is reported separately.
        assert!(report.finder_stats.propagations > 0);
        let json = report.to_json();
        assert!(
            json.contains(r#""per_iteration":[{"iteration":1"#),
            "{json}"
        );
    }

    #[test]
    fn breaks_2x2_blocks_on_large_multiplier_host() {
        // The structure-sharing miter keeps big hosts tractable: hardness
        // must come from the key logic, not the host (Section III-A).
        let host = generators::benchmark("c7552").unwrap();
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .seed(1001)
            .obfuscate(&host)
            .unwrap();
        let report = run_sat_attack_impl(&locked, &fast_cfg()).unwrap();
        assert!(report.result.succeeded(), "{report}");
        assert_eq!(report.functionally_correct, Some(true), "{report}");
    }

    #[test]
    fn breaks_antisat_with_enough_iterations() {
        let host = generators::adder(8);
        let locked = antisat_lock(&host, 4, 7).unwrap();
        let report = run_sat_attack_impl(&locked, &fast_cfg()).unwrap();
        assert!(report.result.succeeded(), "{report}");
        assert_eq!(report.functionally_correct, Some(true));
    }

    #[test]
    fn breaks_sfll_point_function() {
        let host = generators::adder(8);
        let locked = sfll_lock(&host, 6, 9).unwrap();
        let report = run_sat_attack_impl(&locked, &fast_cfg()).unwrap();
        assert!(report.result.succeeded(), "{report}");
        assert_eq!(report.functionally_correct, Some(true));
    }

    #[test]
    fn scan_defense_defeats_the_attack() {
        for seed in 0..20 {
            let host = generators::adder(8);
            let locked = Obfuscator::new(RilBlockSpec::size_2x2())
                .blocks(2)
                .scan_obfuscation(true)
                .seed(seed)
                .obfuscate(&host)
                .unwrap();
            let any_se = locked
                .keys
                .kinds()
                .iter()
                .zip(locked.keys.bits())
                .any(|(k, &v)| matches!(k, ril_core::KeyBitKind::ScanEnable { .. }) && v);
            if !any_se {
                continue;
            }
            let report = run_sat_attack_impl(&locked, &fast_cfg()).unwrap();
            match report.result {
                AttackResult::Failed(_) | AttackResult::Timeout => return,
                _ => {
                    assert_eq!(
                        report.functionally_correct,
                        Some(false),
                        "seed {seed}: attack recovered a truly-correct key through the SE defense: {report}"
                    );
                    return;
                }
            }
        }
        panic!("no seed set an SE key");
    }

    #[test]
    fn timeout_reports_infinity() {
        let host = generators::multiplier(6);
        let locked = Obfuscator::new(RilBlockSpec::size_8x8x8())
            .blocks(2)
            .seed(11)
            .obfuscate(&host)
            .unwrap();
        let cfg = SatAttackConfig {
            timeout: Some(Duration::from_millis(50)),
            ..SatAttackConfig::default()
        };
        let report = run_sat_attack_impl(&locked, &cfg).unwrap();
        assert_eq!(report.result, AttackResult::Timeout);
        assert_eq!(report.table_cell(), "∞");
    }

    #[test]
    fn iteration_cap_respected() {
        let host = generators::adder(8);
        let locked = antisat_lock(&host, 8, 13).unwrap();
        let cfg = SatAttackConfig {
            max_iterations: Some(3),
            timeout: Some(Duration::from_secs(30)),
            ..SatAttackConfig::default()
        };
        let report = run_sat_attack_impl(&locked, &cfg).unwrap();
        assert_eq!(report.result, AttackResult::Timeout);
        assert!(report.iterations <= 3);
    }

    #[test]
    fn one_hot_preprocessing_still_finds_keys() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .seed(17)
            .obfuscate(&host)
            .unwrap();
        let cfg = SatAttackConfig {
            one_hot_routing: true,
            ..fast_cfg()
        };
        let report = run_sat_attack_impl(&locked, &cfg).unwrap();
        assert!(report.result.succeeded(), "{report}");
        assert_eq!(report.functionally_correct, Some(true));
    }
}
