//! Attack outcome types shared by the whole suite.

use crate::json::{escape, JsonValue};
use ril_sat::SolverStats;
use std::fmt;
use std::time::Duration;

/// How an attack ended.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackResult {
    /// A key was recovered and verified exactly equivalent on the sampled
    /// patterns.
    ExactKey(Vec<bool>),
    /// An approximate key was returned (AppSAT) with the estimated output
    /// error rate.
    ApproxKey {
        /// The candidate key.
        key: Vec<bool>,
        /// Estimated fraction of erroneous output bits.
        est_error: f64,
    },
    /// The time/iteration budget expired — the `∞` entries of the paper's
    /// tables.
    Timeout,
    /// The attack terminated erroneously (e.g. its model became
    /// inconsistent with the oracle — the Scan-Enable defense).
    Failed(String),
}

impl AttackResult {
    /// Whether the attack produced a key it believes in.
    pub fn succeeded(&self) -> bool {
        matches!(
            self,
            AttackResult::ExactKey(_) | AttackResult::ApproxKey { .. }
        )
    }

    /// The recovered key, if any.
    pub fn key(&self) -> Option<&[bool]> {
        match self {
            AttackResult::ExactKey(k) => Some(k),
            AttackResult::ApproxKey { key, .. } => Some(key),
            _ => None,
        }
    }

    /// Stable machine-readable tag for this result variant — the `kind`
    /// field of [`AttackReport::to_json`] and the `result` field on attack
    /// trace spans.
    pub fn kind(&self) -> &'static str {
        match self {
            AttackResult::ExactKey(_) => "exact_key",
            AttackResult::ApproxKey { .. } => "approx_key",
            AttackResult::Timeout => "timeout",
            AttackResult::Failed(_) => "failed",
        }
    }
}

impl fmt::Display for AttackResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackResult::ExactKey(k) => write!(f, "exact key ({} bits)", k.len()),
            AttackResult::ApproxKey { key, est_error } => {
                write!(f, "approx key ({} bits, est err {est_error:.4})", key.len())
            }
            AttackResult::Timeout => f.write_str("∞ (timeout)"),
            AttackResult::Failed(why) => write!(f, "failed: {why}"),
        }
    }
}

/// Solver accounting for one DIP iteration (= one solve call on the
/// persistent miter session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IterationStats {
    /// 1-based DIP iteration number.
    pub iteration: usize,
    /// Wall-clock time of this iteration's miter solve.
    pub wall: Duration,
    /// Search-statistics delta for this solve only.
    pub stats: SolverStats,
    /// Clauses appended to the miter since the previous iteration (the
    /// previous DIP's I/O constraint).
    pub clauses_added: usize,
}

/// Full attack report: result plus accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Outcome.
    pub result: AttackResult,
    /// Wall-clock time spent.
    pub wall: Duration,
    /// DIP iterations executed.
    pub iterations: usize,
    /// Oracle queries issued.
    pub oracle_queries: u64,
    /// Whether the recovered key (if any) was verified functionally
    /// equivalent against the *functional-mode* circuit — the ground-truth
    /// check the attacker cannot run but our harness can.
    pub functionally_correct: Option<bool>,
    /// Cumulative solver statistics of the DIP-finding miter session.
    pub miter_stats: SolverStats,
    /// Cumulative solver statistics of the key-extraction finder session.
    pub finder_stats: SolverStats,
    /// Per-DIP-iteration solver accounting, oldest first.
    pub iteration_stats: Vec<IterationStats>,
}

impl AttackReport {
    /// Renders the runtime the way the paper's tables do: seconds, or `∞`.
    pub fn table_cell(&self) -> String {
        match self.result {
            AttackResult::Timeout => "∞".to_string(),
            _ => format!("{:.2}", self.wall.as_secs_f64()),
        }
    }

    /// Serializes the report (including per-iteration solver statistics) as
    /// a JSON object, for the benchmark drivers' machine-readable output.
    /// [`AttackReport::from_json`] parses it back — the bench crate's cell
    /// cache relies on this round trip.
    pub fn to_json(&self) -> String {
        let kind = self.result.kind();
        let result = match &self.result {
            AttackResult::ExactKey(k) => format!(
                r#"{{"kind":"{kind}","bits":{},"key":"{}"}}"#,
                k.len(),
                key_string(k)
            ),
            AttackResult::ApproxKey { key, est_error } => format!(
                r#"{{"kind":"{kind}","bits":{},"est_error":{est_error},"key":"{}"}}"#,
                key.len(),
                key_string(key)
            ),
            AttackResult::Timeout => format!(r#"{{"kind":"{kind}"}}"#),
            AttackResult::Failed(why) => {
                format!(r#"{{"kind":"{kind}","why":"{}"}}"#, escape(why))
            }
        };
        let iters: Vec<String> = self
            .iteration_stats
            .iter()
            .map(|it| {
                format!(
                    r#"{{"iteration":{},"wall_s":{},"clauses_added":{},{}}}"#,
                    it.iteration,
                    it.wall.as_secs_f64(),
                    it.clauses_added,
                    stats_fields(&it.stats)
                )
            })
            .collect();
        format!(
            r#"{{"result":{result},"wall_s":{},"iterations":{},"oracle_queries":{},"functionally_correct":{},"miter":{{{}}},"finder":{{{}}},"per_iteration":[{}]}}"#,
            self.wall.as_secs_f64(),
            self.iterations,
            self.oracle_queries,
            match self.functionally_correct {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
            stats_fields(&self.miter_stats),
            stats_fields(&self.finder_stats),
            iters.join(",")
        )
    }
}

impl AttackReport {
    /// Parses a report previously rendered by [`AttackReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the document is not valid
    /// JSON or lacks the report's fields.
    pub fn from_json(s: &str) -> Result<AttackReport, String> {
        let v = JsonValue::parse(s).map_err(|e| e.to_string())?;
        AttackReport::from_json_value(&v)
    }

    /// Parses a report from an already-parsed [`JsonValue`] object (for
    /// callers that embed reports in larger documents).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on shape mismatches.
    pub fn from_json_value(v: &JsonValue) -> Result<AttackReport, String> {
        let result_v = v.get("result").ok_or("missing `result`")?;
        let result = match result_v.get("kind").and_then(JsonValue::as_str) {
            Some("exact_key") => AttackResult::ExactKey(parse_key(result_v)?),
            Some("approx_key") => AttackResult::ApproxKey {
                key: parse_key(result_v)?,
                est_error: result_v
                    .get("est_error")
                    .and_then(JsonValue::as_f64)
                    .ok_or("missing `est_error`")?,
            },
            Some("timeout") => AttackResult::Timeout,
            Some("failed") => AttackResult::Failed(
                result_v
                    .get("why")
                    .and_then(JsonValue::as_str)
                    .ok_or("missing `why`")?
                    .to_string(),
            ),
            other => return Err(format!("unknown result kind {other:?}")),
        };
        let wall_s = v
            .get("wall_s")
            .and_then(JsonValue::as_f64)
            .ok_or("missing `wall_s`")?;
        let functionally_correct = match v.get("functionally_correct") {
            None | Some(JsonValue::Null) => None,
            Some(b) => Some(b.as_bool().ok_or("`functionally_correct` not a bool")?),
        };
        let iteration_stats = v
            .get("per_iteration")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|it| {
                Ok(IterationStats {
                    iteration: req_u64(it, "iteration")? as usize,
                    wall: Duration::from_secs_f64(
                        it.get("wall_s")
                            .and_then(JsonValue::as_f64)
                            .ok_or("missing iteration `wall_s`")?,
                    ),
                    stats: parse_stats(it)?,
                    clauses_added: req_u64(it, "clauses_added")? as usize,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(AttackReport {
            result,
            wall: Duration::from_secs_f64(wall_s),
            iterations: req_u64(v, "iterations")? as usize,
            oracle_queries: req_u64(v, "oracle_queries")?,
            functionally_correct,
            miter_stats: parse_stats(v.get("miter").ok_or("missing `miter`")?)?,
            finder_stats: parse_stats(v.get("finder").ok_or("missing `finder`")?)?,
            iteration_stats,
        })
    }
}

fn key_string(key: &[bool]) -> String {
    key.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn parse_key(v: &JsonValue) -> Result<Vec<bool>, String> {
    let s = v
        .get("key")
        .and_then(JsonValue::as_str)
        .ok_or("missing `key` bit string")?;
    s.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("bad key bit {other:?}")),
        })
        .collect()
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing numeric `{key}`"))
}

fn parse_stats(v: &JsonValue) -> Result<SolverStats, String> {
    Ok(SolverStats {
        decisions: req_u64(v, "decisions")?,
        conflicts: req_u64(v, "conflicts")?,
        propagations: req_u64(v, "propagations")?,
        restarts: req_u64(v, "restarts")?,
        learned: req_u64(v, "learned")?,
        deleted: req_u64(v, "deleted")?,
    })
}

fn stats_fields(s: &SolverStats) -> String {
    format!(
        r#""decisions":{},"conflicts":{},"propagations":{},"restarts":{},"learned":{},"deleted":{}"#,
        s.decisions, s.conflicts, s.propagations, s.restarts, s.learned, s.deleted
    )
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {:.2}s, {} iterations, {} oracle queries",
            self.result,
            self.wall.as_secs_f64(),
            self.iterations,
            self.oracle_queries
        )?;
        if let Some(ok) = self.functionally_correct {
            write!(f, ", functional: {}", if ok { "✓" } else { "✗" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_predicates() {
        assert!(AttackResult::ExactKey(vec![true]).succeeded());
        assert!(AttackResult::ApproxKey {
            key: vec![],
            est_error: 0.1
        }
        .succeeded());
        assert!(!AttackResult::Timeout.succeeded());
        assert!(!AttackResult::Failed("x".into()).succeeded());
        assert_eq!(AttackResult::ExactKey(vec![true]).key(), Some(&[true][..]));
        assert_eq!(AttackResult::Timeout.key(), None);
    }

    fn report(result: AttackResult) -> AttackReport {
        AttackReport {
            result,
            wall: Duration::from_secs(3),
            iterations: 5,
            oracle_queries: 5,
            functionally_correct: None,
            miter_stats: SolverStats::default(),
            finder_stats: SolverStats::default(),
            iteration_stats: Vec::new(),
        }
    }

    #[test]
    fn table_cell_formats() {
        let mut r = report(AttackResult::Timeout);
        assert_eq!(r.table_cell(), "∞");
        r.result = AttackResult::ExactKey(vec![]);
        r.wall = Duration::from_millis(1234);
        assert_eq!(r.table_cell(), "1.23");
    }

    #[test]
    fn display_is_informative() {
        let mut r = report(AttackResult::Failed("model inconsistent".into()));
        r.wall = Duration::from_secs(1);
        r.iterations = 2;
        r.oracle_queries = 3;
        r.functionally_correct = Some(false);
        let s = r.to_string();
        assert!(s.contains("model inconsistent"));
        assert!(s.contains("✗"));
    }

    #[test]
    fn json_round_trips_basic_shape() {
        let mut r = report(AttackResult::ExactKey(vec![true, false]));
        r.miter_stats.conflicts = 7;
        r.iteration_stats.push(IterationStats {
            iteration: 1,
            wall: Duration::from_millis(250),
            stats: SolverStats {
                conflicts: 7,
                ..SolverStats::default()
            },
            clauses_added: 12,
        });
        let j = r.to_json();
        assert!(j.contains(r#""kind":"exact_key""#), "{j}");
        assert!(j.contains(r#""bits":2"#), "{j}");
        assert!(j.contains(r#""key":"10""#), "{j}");
        assert!(j.contains(r#""conflicts":7"#), "{j}");
        assert!(j.contains(r#""clauses_added":12"#), "{j}");
        assert!(j.contains(r#""per_iteration":[{"#), "{j}");
        // Failure messages are escaped.
        let bad = report(AttackResult::Failed("he said \"no\"\n".into()));
        let j = bad.to_json();
        assert!(j.contains(r#"he said \"no\"\n"#), "{j}");
    }

    #[test]
    fn json_round_trips_exactly() {
        let mut r = report(AttackResult::ExactKey(vec![true, false, true]));
        r.wall = Duration::from_millis(1500);
        r.functionally_correct = Some(true);
        r.miter_stats.conflicts = 42;
        r.finder_stats.propagations = 9;
        r.iteration_stats.push(IterationStats {
            iteration: 1,
            wall: Duration::from_millis(250),
            stats: SolverStats {
                decisions: 3,
                conflicts: 42,
                ..SolverStats::default()
            },
            clauses_added: 12,
        });
        let parsed = AttackReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);

        for result in [
            AttackResult::Timeout,
            AttackResult::Failed("oracle said \"no\"\n".into()),
            AttackResult::ApproxKey {
                key: vec![false, true],
                est_error: 0.25,
            },
        ] {
            let r = report(result);
            assert_eq!(AttackReport::from_json(&r.to_json()).unwrap(), r);
        }
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(AttackReport::from_json("{}").is_err());
        assert!(AttackReport::from_json("not json").is_err());
        assert!(AttackReport::from_json(r#"{"result":{"kind":"mystery"}}"#).is_err());
    }
}
