//! Attack outcome types shared by the whole suite.

use std::fmt;
use std::time::Duration;

/// How an attack ended.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackResult {
    /// A key was recovered and verified exactly equivalent on the sampled
    /// patterns.
    ExactKey(Vec<bool>),
    /// An approximate key was returned (AppSAT) with the estimated output
    /// error rate.
    ApproxKey {
        /// The candidate key.
        key: Vec<bool>,
        /// Estimated fraction of erroneous output bits.
        est_error: f64,
    },
    /// The time/iteration budget expired — the `∞` entries of the paper's
    /// tables.
    Timeout,
    /// The attack terminated erroneously (e.g. its model became
    /// inconsistent with the oracle — the Scan-Enable defense).
    Failed(String),
}

impl AttackResult {
    /// Whether the attack produced a key it believes in.
    pub fn succeeded(&self) -> bool {
        matches!(self, AttackResult::ExactKey(_) | AttackResult::ApproxKey { .. })
    }

    /// The recovered key, if any.
    pub fn key(&self) -> Option<&[bool]> {
        match self {
            AttackResult::ExactKey(k) => Some(k),
            AttackResult::ApproxKey { key, .. } => Some(key),
            _ => None,
        }
    }
}

impl fmt::Display for AttackResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackResult::ExactKey(k) => write!(f, "exact key ({} bits)", k.len()),
            AttackResult::ApproxKey { key, est_error } => {
                write!(f, "approx key ({} bits, est err {est_error:.4})", key.len())
            }
            AttackResult::Timeout => f.write_str("∞ (timeout)"),
            AttackResult::Failed(why) => write!(f, "failed: {why}"),
        }
    }
}

/// Full attack report: result plus accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Outcome.
    pub result: AttackResult,
    /// Wall-clock time spent.
    pub wall: Duration,
    /// DIP iterations executed.
    pub iterations: usize,
    /// Oracle queries issued.
    pub oracle_queries: u64,
    /// Whether the recovered key (if any) was verified functionally
    /// equivalent against the *functional-mode* circuit — the ground-truth
    /// check the attacker cannot run but our harness can.
    pub functionally_correct: Option<bool>,
}

impl AttackReport {
    /// Renders the runtime the way the paper's tables do: seconds, or `∞`.
    pub fn table_cell(&self) -> String {
        match self.result {
            AttackResult::Timeout => "∞".to_string(),
            _ => format!("{:.2}", self.wall.as_secs_f64()),
        }
    }
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {:.2}s, {} iterations, {} oracle queries",
            self.result,
            self.wall.as_secs_f64(),
            self.iterations,
            self.oracle_queries
        )?;
        if let Some(ok) = self.functionally_correct {
            write!(f, ", functional: {}", if ok { "✓" } else { "✗" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_predicates() {
        assert!(AttackResult::ExactKey(vec![true]).succeeded());
        assert!(AttackResult::ApproxKey {
            key: vec![],
            est_error: 0.1
        }
        .succeeded());
        assert!(!AttackResult::Timeout.succeeded());
        assert!(!AttackResult::Failed("x".into()).succeeded());
        assert_eq!(AttackResult::ExactKey(vec![true]).key(), Some(&[true][..]));
        assert_eq!(AttackResult::Timeout.key(), None);
    }

    #[test]
    fn table_cell_formats() {
        let mut r = AttackReport {
            result: AttackResult::Timeout,
            wall: Duration::from_secs(3),
            iterations: 5,
            oracle_queries: 5,
            functionally_correct: None,
        };
        assert_eq!(r.table_cell(), "∞");
        r.result = AttackResult::ExactKey(vec![]);
        r.wall = Duration::from_millis(1234);
        assert_eq!(r.table_cell(), "1.23");
    }

    #[test]
    fn display_is_informative() {
        let r = AttackReport {
            result: AttackResult::Failed("model inconsistent".into()),
            wall: Duration::from_secs(1),
            iterations: 2,
            oracle_queries: 3,
            functionally_correct: Some(false),
        };
        let s = r.to_string();
        assert!(s.contains("model inconsistent"));
        assert!(s.contains("✗"));
    }
}
