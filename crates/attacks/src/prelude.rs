//! One-line import for attack drivers:
//! `use ril_attacks::prelude::*;` brings in the unified [`Attack`] API,
//! the per-attack config structs it projects onto, and the report types.

pub use crate::appsat::AppSatConfig;
pub use crate::attack::{
    default_solver_threads, run_attack, AppSatAttack, Attack, AttackConfig, AttackKind,
    AttackOutcome, RemovalAttack, SatAttack, ScanSatAttack,
};
pub use crate::oracle::{attacker_view, Oracle, OracleError, OracleSource};
pub use crate::removal::RemovalReport;
pub use crate::report::{AttackReport, AttackResult, IterationStats};
pub use crate::satattack::{default_timeout, SatAttackConfig};
