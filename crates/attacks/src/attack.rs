//! The unified attack API.
//!
//! The four adversaries of the paper's Table III — the exact SAT attack,
//! AppSAT, ScanSAT and removal+bypass — historically each had their own
//! free-function entry point with its own config struct. This module puts
//! one surface over all of them: [`AttackKind`] names an attack,
//! [`AttackConfig`] carries every knob any of them understands (including
//! the shared [`SolverConfig`], and with it the portfolio `threads`
//! setting), the [`Attack`] trait runs one, and [`run_attack`] dispatches
//! by kind. Every attack returns the same [`AttackOutcome`], so the bench
//! drivers iterate over kinds instead of special-casing call signatures.
//!
//! The pre-0.4 per-attack entry points (`run_sat_attack`, `run_appsat`,
//! `scansat_attack`, `removal_attack`) are gone; the oracle-level drivers
//! (`satattack::sat_attack`, `appsat::appsat_attack`,
//! `scansat::scansat_model_attack`) stay at their module paths for callers
//! that bring their own oracle.

use crate::appsat::{run_appsat_impl, AppSatConfig};
use crate::removal::{removal_attack_impl, RemovalReport};
use crate::report::{AttackReport, AttackResult};
use crate::satattack::{default_timeout, run_sat_attack_impl, SatAttackConfig};
use crate::scansat::scansat_attack_impl;
use ril_core::LockedCircuit;
use ril_netlist::NetlistError;
use ril_sat::{SolverConfig, SolverStats, MAX_SOLVER_THREADS};
use std::time::{Duration, Instant};

/// The attacks of the paper's Table III, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// The exact oracle-guided SAT attack.
    Sat,
    /// AppSAT, the approximate variant with error estimation.
    AppSat,
    /// ScanSAT's output-mask modelling attack.
    ScanSat,
    /// Removal + bypass of key-dependent logic.
    Removal,
}

impl AttackKind {
    /// Every kind, in the paper's table order.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::Sat,
        AttackKind::AppSat,
        AttackKind::ScanSat,
        AttackKind::Removal,
    ];

    /// Stable machine-readable name (the `attack` field in bench output).
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Sat => "sat",
            AttackKind::AppSat => "appsat",
            AttackKind::ScanSat => "scansat",
            AttackKind::Removal => "removal",
        }
    }

    /// Parses [`AttackKind::name`] back; `None` for unknown names.
    pub fn parse(s: &str) -> Option<AttackKind> {
        AttackKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The canonical cross-attack configuration: the union of every knob the
/// four attacks understand. Each attack reads the fields it cares about
/// and ignores the rest.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Total wall-clock budget (`None` = unbounded).
    pub timeout: Option<Duration>,
    /// Maximum DIP iterations (SAT / AppSAT / ScanSAT).
    pub max_iterations: Option<usize>,
    /// Backend solver configuration, shared by every SAT-based attack.
    /// `solver.threads > 1` races a diversified portfolio per solve.
    pub solver: SolverConfig,
    /// RNG seed (AppSAT's random queries, removal's scoring patterns).
    pub seed: u64,
    /// SAT attack: add the one-layer one-hot routing re-encoding.
    pub one_hot_routing: bool,
    /// AppSAT: DIP iterations between error estimations.
    pub rounds_per_estimate: usize,
    /// AppSAT: random queries per estimation.
    pub queries_per_estimate: usize,
    /// AppSAT: accept the candidate at or below this estimated error.
    pub error_threshold: f64,
    /// Removal: 64-pattern simulation words scoring the salvage.
    pub patterns: usize,
}

impl Default for AttackConfig {
    fn default() -> AttackConfig {
        let appsat = AppSatConfig::default();
        let solver = SolverConfig {
            threads: default_solver_threads(),
            ..SolverConfig::default()
        };
        AttackConfig {
            timeout: Some(default_timeout()),
            max_iterations: None,
            solver,
            seed: appsat.seed,
            one_hot_routing: false,
            rounds_per_estimate: appsat.rounds_per_estimate,
            queries_per_estimate: appsat.queries_per_estimate,
            error_threshold: appsat.error_threshold,
            patterns: 32,
        }
    }
}

impl AttackConfig {
    /// Projects the shared config onto a [`SatAttackConfig`] (SAT and
    /// ScanSAT read this view).
    pub fn sat_config(&self) -> SatAttackConfig {
        SatAttackConfig {
            timeout: self.timeout,
            max_iterations: self.max_iterations,
            solver: self.solver.clone(),
            one_hot_routing: self.one_hot_routing,
        }
    }

    /// Projects the shared config onto an [`AppSatConfig`].
    pub fn appsat_config(&self) -> AppSatConfig {
        AppSatConfig {
            rounds_per_estimate: self.rounds_per_estimate,
            queries_per_estimate: self.queries_per_estimate,
            error_threshold: self.error_threshold,
            timeout: self.timeout,
            max_iterations: self.max_iterations,
            solver: self.solver.clone(),
            seed: self.seed,
        }
    }
}

/// The default solver worker count: the `RIL_SOLVER_THREADS` environment
/// variable, leniently parsed like [`default_timeout`] parses
/// `RIL_TIMEOUT_SECS` (missing/unparsable values fall back to 1, valid
/// ones are clamped to `1..=`[`MAX_SOLVER_THREADS`]).
pub fn default_solver_threads() -> usize {
    std::env::var("RIL_SOLVER_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, MAX_SOLVER_THREADS))
        .unwrap_or(1)
}

/// What any attack produces: the common [`AttackReport`] plus any
/// attack-specific extras.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Which attack ran.
    pub kind: AttackKind,
    /// The canonical report (for removal this is synthesized — see
    /// [`RemovalAttack`]).
    pub report: AttackReport,
    /// The full removal report, when [`AttackOutcome::kind`] is
    /// [`AttackKind::Removal`].
    pub removal: Option<RemovalReport>,
}

/// One oracle-guided (or structural) adversary behind the unified API.
pub trait Attack {
    /// Which [`AttackKind`] this adversary implements.
    fn kind(&self) -> AttackKind;

    /// Runs the attack on a locked circuit.
    ///
    /// # Errors
    ///
    /// Propagates netlist/simulator construction failures.
    fn run(
        &self,
        locked: &LockedCircuit,
        cfg: &AttackConfig,
    ) -> Result<AttackOutcome, NetlistError>;
}

/// The exact SAT attack behind the [`Attack`] trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatAttack;

impl Attack for SatAttack {
    fn kind(&self) -> AttackKind {
        AttackKind::Sat
    }

    fn run(
        &self,
        locked: &LockedCircuit,
        cfg: &AttackConfig,
    ) -> Result<AttackOutcome, NetlistError> {
        let report = run_sat_attack_impl(locked, &cfg.sat_config())?;
        Ok(AttackOutcome {
            kind: AttackKind::Sat,
            report,
            removal: None,
        })
    }
}

/// AppSAT behind the [`Attack`] trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppSatAttack;

impl Attack for AppSatAttack {
    fn kind(&self) -> AttackKind {
        AttackKind::AppSat
    }

    fn run(
        &self,
        locked: &LockedCircuit,
        cfg: &AttackConfig,
    ) -> Result<AttackOutcome, NetlistError> {
        let report = run_appsat_impl(locked, &cfg.appsat_config())?;
        Ok(AttackOutcome {
            kind: AttackKind::AppSat,
            report,
            removal: None,
        })
    }
}

/// ScanSAT behind the [`Attack`] trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanSatAttack;

impl Attack for ScanSatAttack {
    fn kind(&self) -> AttackKind {
        AttackKind::ScanSat
    }

    fn run(
        &self,
        locked: &LockedCircuit,
        cfg: &AttackConfig,
    ) -> Result<AttackOutcome, NetlistError> {
        let report = scansat_attack_impl(locked, &cfg.sat_config())?;
        Ok(AttackOutcome {
            kind: AttackKind::ScanSat,
            report,
            removal: None,
        })
    }
}

/// Removal+bypass behind the [`Attack`] trait.
///
/// Removal is structural, not oracle-guided, so its native result is a
/// [`RemovalReport`]. The adapter synthesizes the canonical report —
/// success (an empty [`AttackResult::ExactKey`]: removal recovers a
/// circuit, not a key) only when the exact miter proved the salvage
/// equivalent, otherwise [`AttackResult::Failed`] carrying the sampled
/// error rate — and keeps the full native report in
/// [`AttackOutcome::removal`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RemovalAttack;

impl Attack for RemovalAttack {
    fn kind(&self) -> AttackKind {
        AttackKind::Removal
    }

    fn run(
        &self,
        locked: &LockedCircuit,
        cfg: &AttackConfig,
    ) -> Result<AttackOutcome, NetlistError> {
        let start = Instant::now();
        let removal = removal_attack_impl(locked, cfg.patterns, cfg.seed)?;
        let exact = removal.exact_equivalent;
        let result = if exact == Some(true) {
            AttackResult::ExactKey(Vec::new())
        } else {
            AttackResult::Failed(format!(
                "salvaged netlist is not equivalent (sampled error rate {:.4})",
                removal.error_rate
            ))
        };
        let report = AttackReport {
            result,
            wall: start.elapsed(),
            iterations: 0,
            oracle_queries: 0,
            functionally_correct: exact,
            miter_stats: SolverStats::default(),
            finder_stats: SolverStats::default(),
            iteration_stats: Vec::new(),
        };
        Ok(AttackOutcome {
            kind: AttackKind::Removal,
            report,
            removal: Some(removal),
        })
    }
}

/// Runs the attack named by `kind` — the canonical entry point of the
/// suite.
///
/// # Errors
///
/// Propagates netlist/simulator construction failures.
pub fn run_attack(
    kind: AttackKind,
    locked: &LockedCircuit,
    cfg: &AttackConfig,
) -> Result<AttackOutcome, NetlistError> {
    match kind {
        AttackKind::Sat => SatAttack.run(locked, cfg),
        AttackKind::AppSat => AppSatAttack.run(locked, cfg),
        AttackKind::ScanSat => ScanSatAttack.run(locked, cfg),
        AttackKind::Removal => RemovalAttack.run(locked, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_core::baselines::{sfll_lock, xor_lock};
    use ril_core::{Obfuscator, RilBlockSpec};
    use ril_netlist::generators;

    fn fast_cfg() -> AttackConfig {
        AttackConfig {
            timeout: Some(Duration::from_secs(30)),
            ..AttackConfig::default()
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in AttackKind::ALL {
            assert_eq!(AttackKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(AttackKind::parse("mystery"), None);
    }

    #[test]
    fn config_projections_carry_shared_knobs() {
        let mut cfg = fast_cfg();
        cfg.max_iterations = Some(7);
        cfg.one_hot_routing = true;
        cfg.error_threshold = 0.25;
        cfg.seed = 99;
        let sat = cfg.sat_config();
        assert_eq!(sat.timeout, cfg.timeout);
        assert_eq!(sat.max_iterations, Some(7));
        assert!(sat.one_hot_routing);
        let app = cfg.appsat_config();
        assert_eq!(app.timeout, cfg.timeout);
        assert_eq!(app.max_iterations, Some(7));
        assert_eq!(app.error_threshold, 0.25);
        assert_eq!(app.seed, 99);
    }

    #[test]
    fn dispatcher_runs_every_kind() {
        let host = generators::adder(8);
        let locked = xor_lock(&host, 10, 4).unwrap();
        for kind in AttackKind::ALL {
            let outcome = run_attack(kind, &locked, &fast_cfg()).unwrap();
            assert_eq!(outcome.kind, kind);
            assert_eq!(outcome.removal.is_some(), kind == AttackKind::Removal);
        }
    }

    #[test]
    fn sat_kind_breaks_ril_blocks() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .seed(5)
            .obfuscate(&host)
            .unwrap();
        let outcome = run_attack(AttackKind::Sat, &locked, &fast_cfg()).unwrap();
        assert!(outcome.report.result.succeeded(), "{}", outcome.report);
        assert_eq!(outcome.report.functionally_correct, Some(true));
    }

    #[test]
    fn portfolio_config_matches_sequential_outcome() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .seed(5)
            .obfuscate(&host)
            .unwrap();
        let mut cfg = fast_cfg();
        cfg.solver.threads = 4;
        let portfolio = run_attack(AttackKind::Sat, &locked, &cfg).unwrap();
        assert!(portfolio.report.result.succeeded(), "{}", portfolio.report);
        assert_eq!(portfolio.report.functionally_correct, Some(true));
    }

    #[test]
    fn removal_outcome_is_faithful_to_native_report() {
        // SFLL: sampling says "near perfect" but the exact miter says no —
        // the canonical report must reflect the exact verdict.
        let host = generators::adder(8);
        let locked = sfll_lock(&host, 8, 3).unwrap();
        let outcome = run_attack(AttackKind::Removal, &locked, &fast_cfg()).unwrap();
        let removal = outcome.removal.expect("native removal report");
        assert_eq!(removal.exact_equivalent, Some(false));
        assert!(matches!(outcome.report.result, AttackResult::Failed(_)));
        assert_eq!(outcome.report.functionally_correct, Some(false));
    }

    #[test]
    fn default_solver_threads_is_valid() {
        let n = default_solver_threads();
        assert!((1..=MAX_SOLVER_THREADS).contains(&n));
    }
}
