//! AppSAT — the approximate SAT attack (Shamsi et al., HOST 2017).
//!
//! AppSAT interleaves DIP iterations with random-query error estimation:
//! once the current best key's estimated error drops below a threshold it
//! returns early with an *approximate* key instead of grinding to miter
//! UNSAT. Against low-corruptibility point-function locks this terminates
//! quickly; against RIL-Blocks' high-corruption key logic it degenerates
//! to the exact attack; and against the Scan-Enable defense its model is
//! inconsistent with the oracle and it "fails and terminates erroneously"
//! (paper Table III, ✗ column).

use crate::oracle::{attacker_view, Oracle, OracleSource};
use crate::report::{AttackReport, AttackResult};
use crate::satattack::default_timeout;
use crate::session::{AttackSession, DipStep};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ril_core::LockedCircuit;
use ril_netlist::{Netlist, Simulator};
use ril_sat::SolverConfig;
use std::time::Duration;

/// AppSAT configuration ("default setting" = the published d/q/threshold).
#[derive(Debug, Clone)]
pub struct AppSatConfig {
    /// DIP iterations between error estimations.
    pub rounds_per_estimate: usize,
    /// Random queries per estimation.
    pub queries_per_estimate: usize,
    /// Accept the candidate when the estimated error is at or below this.
    pub error_threshold: f64,
    /// Wall-clock budget.
    pub timeout: Option<Duration>,
    /// Maximum DIP iterations.
    pub max_iterations: Option<usize>,
    /// Backend solver configuration.
    pub solver: SolverConfig,
    /// RNG seed for the random queries.
    pub seed: u64,
}

impl Default for AppSatConfig {
    fn default() -> AppSatConfig {
        AppSatConfig {
            rounds_per_estimate: 4,
            queries_per_estimate: 32,
            error_threshold: 0.0,
            timeout: Some(default_timeout()),
            max_iterations: None,
            solver: SolverConfig::default(),
            seed: 0xA995A7,
        }
    }
}

/// Runs AppSAT against an attacker-view netlist and an oracle source.
///
/// # Panics
///
/// Panics if the netlist has no key inputs or widths mismatch the oracle.
pub fn appsat_attack(
    nl: &Netlist,
    oracle: &mut dyn OracleSource,
    cfg: &AppSatConfig,
) -> AttackReport {
    let mut span = ril_trace::span("appsat", ril_trace::Phase::Attack);
    let report = appsat_attack_inner(nl, oracle, cfg);
    if span.is_active() {
        span.record_str("result", report.result.kind());
        span.record_u64("iterations", report.iterations as u64);
        span.record_u64("oracle_queries", report.oracle_queries);
        ril_trace::counter("attack.runs", 1);
    }
    report
}

fn appsat_attack_inner(
    nl: &Netlist,
    oracle: &mut dyn OracleSource,
    cfg: &AppSatConfig,
) -> AttackReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sess = AttackSession::new(
        nl,
        oracle,
        cfg.solver.clone(),
        None,
        cfg.timeout,
        cfg.max_iterations,
    );
    let mut predict_sim = Simulator::new(nl).expect("combinational attacker view");

    loop {
        match sess.step(oracle) {
            DipStep::Distinguished => {}
            DipStep::Budget => return sess.report(oracle, AttackResult::Timeout),
            DipStep::OracleInconsistent => {
                return sess.report(
                    oracle,
                    AttackResult::Failed(
                        "AppSAT terminated erroneously: oracle contradicts key-independent logic"
                            .into(),
                    ),
                )
            }
            DipStep::OracleFailed(e) => {
                return sess.report(oracle, AttackResult::Failed(format!("oracle failure: {e}")))
            }
            DipStep::Converged => {
                // Converged exactly — extract like the plain SAT attack.
                return match sess.extract_key() {
                    Ok(Some(key)) => sess.report(oracle, AttackResult::ExactKey(key)),
                    Ok(None) => sess.report(
                        oracle,
                        AttackResult::Failed(
                            "AppSAT terminated erroneously: no key matches the oracle".into(),
                        ),
                    ),
                    Err(()) => sess.report(oracle, AttackResult::Timeout),
                };
            }
        }

        // Periodic error estimation with random-query reinforcement,
        // against the warm finder session (no rebuild per candidate).
        if sess.iterations.is_multiple_of(cfg.rounds_per_estimate) {
            let _est = ril_trace::span("estimate_error", ril_trace::Phase::Verify);
            let candidate = match sess.extract_key() {
                Ok(Some(key)) => key,
                Ok(None) => {
                    return sess.report(
                        oracle,
                        AttackResult::Failed(
                            "AppSAT terminated erroneously: candidate-key formula is UNSAT".into(),
                        ),
                    )
                }
                Err(()) => return sess.report(oracle, AttackResult::Timeout),
            };
            let mut wrong_bits = 0usize;
            let mut total_bits = 0usize;
            for _ in 0..cfg.queries_per_estimate {
                let probe: Vec<bool> = (0..oracle.input_width()).map(|_| rng.gen()).collect();
                let truth = match oracle.try_query(&probe) {
                    Ok(t) => t,
                    Err(e) => {
                        return sess
                            .report(oracle, AttackResult::Failed(format!("oracle failure: {e}")))
                    }
                };
                let mut full = vec![false; sess.inst.input_vars.len()];
                for (slot, &pos) in sess.inst.oracle_positions.iter().enumerate() {
                    full[pos] = probe[slot];
                }
                let predict = predict_sim.eval_pattern(nl, &full, &candidate);
                let diff = predict.iter().zip(&truth).filter(|(a, b)| a != b).count();
                wrong_bits += diff;
                total_bits += truth.len();
                if diff > 0 && sess.reinforce(&full, &truth).is_err() {
                    return sess.report(
                        oracle,
                        AttackResult::Failed(
                            "AppSAT terminated erroneously: oracle contradicts key-independent logic"
                                .into(),
                        ),
                    );
                }
            }
            let est_error = wrong_bits as f64 / total_bits.max(1) as f64;
            if est_error <= cfg.error_threshold {
                return sess.report(
                    oracle,
                    AttackResult::ApproxKey {
                        key: candidate,
                        est_error,
                    },
                );
            }
        }
    }
}

/// Full harness flow behind [`crate::run_attack`]: attacker view + oracle
/// from a locked circuit, with a ground-truth functional check on the
/// recovered key.
pub(crate) fn run_appsat_impl(
    locked: &LockedCircuit,
    cfg: &AppSatConfig,
) -> Result<AttackReport, ril_netlist::NetlistError> {
    let view = attacker_view(locked);
    let mut oracle = Oracle::new(locked)?;
    let mut report = appsat_attack(&view, &mut oracle, cfg);
    if let Some(key) = report.result.key() {
        let _v = ril_trace::span("verify_key", ril_trace::Phase::Verify);
        let ok = locked.equivalent_under_key(key, 32)?;
        report.functionally_correct = Some(ok);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_core::baselines::{sfll_lock, xor_lock};
    use ril_core::{Obfuscator, RilBlockSpec};
    use ril_netlist::generators;

    fn fast_cfg() -> AppSatConfig {
        AppSatConfig {
            timeout: Some(Duration::from_secs(30)),
            ..AppSatConfig::default()
        }
    }

    #[test]
    fn appsat_recovers_xor_lock_exactly_or_approximately() {
        let host = generators::adder(8);
        let locked = xor_lock(&host, 10, 4).unwrap();
        let report = run_appsat_impl(&locked, &fast_cfg()).unwrap();
        assert!(report.result.succeeded(), "{report}");
        assert_eq!(report.functionally_correct, Some(true), "{report}");
    }

    #[test]
    fn appsat_shines_on_point_functions() {
        // SFLL's wrong keys err on ~1 input pattern: a relaxed AppSAT
        // threshold accepts an approximate key quickly.
        let host = generators::adder(8);
        let locked = sfll_lock(&host, 10, 5).unwrap();
        let cfg = AppSatConfig {
            error_threshold: 0.01,
            rounds_per_estimate: 2,
            ..fast_cfg()
        };
        let report = run_appsat_impl(&locked, &cfg).unwrap();
        assert!(report.result.succeeded(), "{report}");
        match report.result {
            AttackResult::ApproxKey { est_error, .. } => assert!(est_error <= 0.01),
            AttackResult::ExactKey(_) => {}
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn appsat_breaks_unshielded_ril_blocks() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .seed(8)
            .obfuscate(&host)
            .unwrap();
        let report = run_appsat_impl(&locked, &fast_cfg()).unwrap();
        assert!(report.result.succeeded(), "{report}");
        assert_eq!(report.functionally_correct, Some(true));
    }

    #[test]
    fn appsat_fails_under_scan_defense() {
        // Table III: AppSAT ✗ for all circuits with SE circuitry active.
        for seed in 0..20 {
            let host = generators::adder(8);
            let locked = Obfuscator::new(RilBlockSpec::size_2x2())
                .blocks(2)
                .scan_obfuscation(true)
                .seed(seed)
                .obfuscate(&host)
                .unwrap();
            let any_se = locked
                .keys
                .kinds()
                .iter()
                .zip(locked.keys.bits())
                .any(|(k, &v)| matches!(k, ril_core::KeyBitKind::ScanEnable { .. }) && v);
            if !any_se {
                continue;
            }
            let report = run_appsat_impl(&locked, &fast_cfg()).unwrap();
            let defeated = matches!(
                report.result,
                AttackResult::Failed(_) | AttackResult::Timeout
            ) || report.functionally_correct == Some(false);
            assert!(defeated, "seed {seed}: {report}");
            return;
        }
        panic!("no seed set an SE key");
    }

    #[test]
    fn timeout_respected() {
        let host = generators::multiplier(6);
        let locked = Obfuscator::new(RilBlockSpec::size_8x8x8())
            .blocks(2)
            .seed(12)
            .obfuscate(&host)
            .unwrap();
        let cfg = AppSatConfig {
            timeout: Some(Duration::from_millis(50)),
            ..AppSatConfig::default()
        };
        let report = run_appsat_impl(&locked, &cfg).unwrap();
        assert_eq!(report.result, AttackResult::Timeout);
    }
}
