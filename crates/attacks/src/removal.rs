//! Removal / bypass attack.
//!
//! The attacker strips the key-dependent logic and tries to salvage a
//! functional circuit: every gate in the transitive fan-out of a key input
//! is deleted, and each deleted gate whose fan-ins include a *clean*
//! (key-independent) signal is bypassed to that signal (the standard
//! removal+bypass heuristic that defeats SFLL-class restore units).
//!
//! Against RIL-Blocks this cannot work: the absorbed gates' functions live
//! *inside* the key bits, so removal leaves holes where logic used to be —
//! "removal of the RIL-blocks does not benefit the attacker in any way"
//! (paper Section IV-B).

use crate::oracle::attacker_view;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ril_core::LockedCircuit;
use ril_netlist::generators::const_net;
use ril_netlist::{GateId, NetId, Netlist, NetlistError, Simulator};
use ril_sat::{EquivOptions, EquivResult, EquivSession};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Result of a removal attack.
#[derive(Debug, Clone)]
pub struct RemovalReport {
    /// Gates deleted (the key cone).
    pub removed_gates: usize,
    /// Deleted gates bypassed to a clean fan-in (vs. tied to constant 0).
    pub bypassed: usize,
    /// The salvaged netlist.
    pub recovered: Netlist,
    /// Fraction of output bits that differ from the true function over the
    /// sampled patterns (0 = perfect recovery).
    pub error_rate: f64,
    /// Exact SAT verdict on the salvage, from the incremental
    /// [`EquivSession`] miter (`None` when the solve budget expired).
    /// Random sampling can miss point-function discrepancies — SFLL's
    /// stripped pattern is exactly one input — so the exact check is what
    /// separates "perfect salvage" from "merely close".
    pub exact_equivalent: Option<bool>,
}

impl RemovalReport {
    /// The paper's notion of success: the salvaged circuit is (nearly)
    /// functionally correct.
    pub fn succeeded(&self, tolerance: f64) -> bool {
        self.error_rate <= tolerance
    }
}

/// Runs the removal+bypass attack (behind [`crate::run_attack`]) on a
/// locked circuit and scores the salvaged netlist against the true
/// function over `patterns` random 64-pattern words.
pub(crate) fn removal_attack_impl(
    locked: &LockedCircuit,
    patterns: usize,
    seed: u64,
) -> Result<RemovalReport, NetlistError> {
    let mut span = ril_trace::span("removal", ril_trace::Phase::Attack);
    let report = removal_attack_inner(locked, patterns, seed)?;
    if span.is_active() {
        span.record_u64("removed_gates", report.removed_gates as u64);
        span.record_u64("bypassed", report.bypassed as u64);
        span.record_f64("error_rate", report.error_rate);
        ril_trace::counter("attack.runs", 1);
    }
    Ok(report)
}

fn removal_attack_inner(
    locked: &LockedCircuit,
    patterns: usize,
    seed: u64,
) -> Result<RemovalReport, NetlistError> {
    let mut nl = attacker_view(locked);

    // The key cone: every gate reachable from any key input, from the
    // netlist's cached per-bit key analysis.
    let key_analysis = nl.key_analysis();
    let mut cone: HashSet<GateId> = HashSet::new();
    for bit in 0..key_analysis.key_bits() {
        cone.extend(key_analysis.cone(bit).iter().copied());
    }

    // Choose a bypass replacement for each cone gate, in topological order
    // so clean fan-ins are never themselves cone outputs.
    let order = nl.topo_order()?;
    let mut replacement: HashMap<NetId, NetId> = HashMap::new();
    let zero = const_net(&mut nl, false);
    for gid in order {
        if !cone.contains(&gid) {
            continue;
        }
        let gate = nl.gate(gid);
        let clean = gate.inputs().iter().copied().find(|&n| {
            !nl.is_key_input(n)
                && nl
                    .net(n)
                    .driver()
                    .map(|d| !cone.contains(&d))
                    .unwrap_or(true)
        });
        replacement.insert(gate.output(), clean.unwrap_or(zero));
    }

    let bypassed = replacement.values().filter(|&&r| r != zero).count();
    let removed_gates = cone.len();
    for gid in &cone {
        nl.remove_gate(*gid);
    }
    for (old, new) in &replacement {
        nl.redirect_consumers(*old, *new);
    }
    // Key inputs are now dangling; the salvaged netlist keeps them declared
    // (harmless). Dangling cone outputs that nobody redirected simply have
    // no consumers left. Normalize the salvage (fold the tied-off
    // constants, sweep unreachable debris).
    nl.set_name(format!("{}_removed", locked.netlist.name()));
    ril_netlist::opt::optimize(&mut nl)?;

    // Score against the true function (sampled + exact): one
    // `verify_salvage` span covers both checks.
    let _v = ril_trace::span("verify_salvage", ril_trace::Phase::Verify);
    let mut sim_true = Simulator::new(&locked.original)?;
    let mut sim_rec = Simulator::new(&nl)?;
    let n_data_orig = locked.original.data_inputs().len();
    let n_data_rec = nl.data_inputs().len();
    let n_keys_rec = nl.key_inputs().len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut diff = 0u64;
    let mut total = 0u64;
    for _ in 0..patterns {
        let data: Vec<u64> = (0..n_data_orig).map(|_| rng.gen()).collect();
        let mut data_rec = data.clone();
        data_rec.resize(n_data_rec, 0); // SE pin (if any) low
        let keys_rec = vec![0u64; n_keys_rec]; // dangling keys — any value
        let a = sim_true.eval_words(&locked.original, &data, &[]);
        let b = sim_rec.eval_words(&nl, &data_rec, &keys_rec);
        for (x, y) in a.iter().zip(&b) {
            diff += (x ^ y).count_ones() as u64;
            total += 64;
        }
    }
    // Exact equivalence of the salvage vs. the true function, on a
    // persistent EquivSession miter. Inputs present only on the salvaged
    // side (dangling key pins, the SE pin) are left free — they no longer
    // reach any output after the bypass + optimize passes.
    let ignore_inputs: Vec<String> = nl
        .inputs()
        .iter()
        .map(|&i| nl.net(i).name().to_string())
        .filter(|name| {
            !locked
                .original
                .inputs()
                .iter()
                .any(|&o| locked.original.net(o).name() == name)
        })
        .collect();
    let options = EquivOptions {
        timeout: Some(Duration::from_secs(5)),
        ignore_inputs,
        fixed_inputs: Vec::new(),
        // The bypass re-drives outputs from differently-named nets.
        match_outputs_by_position: true,
    };
    let exact_equivalent = match EquivSession::new(&locked.original, &nl, &options) {
        Ok(mut sess) => match sess.check() {
            EquivResult::Equivalent => Some(true),
            EquivResult::Inequivalent { .. } => Some(false),
            EquivResult::Unknown => None,
        },
        Err(_) => None,
    };

    Ok(RemovalReport {
        removed_gates,
        bypassed,
        recovered: nl,
        error_rate: diff as f64 / total.max(1) as f64,
        exact_equivalent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_core::baselines::sfll_lock;
    use ril_core::{Obfuscator, RilBlockSpec};
    use ril_netlist::generators;

    #[test]
    fn removal_defeats_sfll_restore_unit() {
        // Bypassing the restore XOR leaves the stripped circuit: wrong on
        // (at most) one protected input pattern — near-zero error.
        let host = generators::adder(8);
        let locked = sfll_lock(&host, 8, 3).unwrap();
        let report = removal_attack_impl(&locked, 32, 1).unwrap();
        assert!(report.removed_gates > 0);
        assert!(report.bypassed > 0);
        assert!(
            report.succeeded(0.01),
            "error {} should be tiny",
            report.error_rate
        );
        // Sampling calls it a success, but the exact miter knows the
        // salvage still errs on the stripped point.
        assert_eq!(report.exact_equivalent, Some(false));
    }

    #[test]
    fn removal_fails_against_ril_blocks() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_8x8())
            .seed(5)
            .obfuscate(&host)
            .unwrap();
        let report = removal_attack_impl(&locked, 32, 2).unwrap();
        assert!(report.removed_gates > 0);
        assert!(
            !report.succeeded(0.01),
            "removal should not recover absorbed gates (error {})",
            report.error_rate
        );
        assert_eq!(report.exact_equivalent, Some(false));
        // The salvaged netlist is structurally valid, just wrong.
        report.recovered.validate().unwrap();
    }

    #[test]
    fn removal_fails_against_many_2x2_blocks() {
        let host = generators::multiplier(6);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(8)
            .seed(6)
            .obfuscate(&host)
            .unwrap();
        let report = removal_attack_impl(&locked, 32, 3).unwrap();
        assert!(report.error_rate > 0.01, "error {}", report.error_rate);
    }

    #[test]
    fn report_success_threshold() {
        let host = generators::adder(6);
        let locked = sfll_lock(&host, 6, 9).unwrap();
        let report = removal_attack_impl(&locked, 16, 4).unwrap();
        assert!(report.succeeded(1.0));
    }
}
