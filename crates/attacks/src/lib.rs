//! # ril-attacks — the oracle-guided adversary suite
//!
//! Everything the paper attacks RIL-Blocks with (and the baselines those
//! attacks *do* break):
//!
//! * [`satattack`] — the oracle-guided SAT attack with a CaDiCaL-class
//!   CDCL backend, optional one-layer one-hot routing re-encoding.
//! * [`appsat`] — the approximate attack, with error-estimation rounds.
//! * [`removal`] — removal + bypass of key-dependent logic.
//! * [`scansat`] — the scan-chain modelling attack and the
//!   boundary-inversion victim it was designed for.
//! * [`oracle`] — the activated-IC black box (scan accesses assert `SE`,
//!   so Scan-Enable-defended designs answer with corrupted responses).
//! * [`preprocess`] — CNF statistics and BVA preprocessing.
//! * [`json`] — the hand-rolled JSON reader matching the suite's
//!   hand-rolled writers (no crates-io `serde` in this environment).
//!
//! ## Quickstart
//!
//! Every attack runs behind the unified [`Attack`] API ([`attack`]
//! module): pick an [`AttackKind`], fill an [`AttackConfig`] (one struct
//! for all four attacks, including the solver portfolio `threads` knob),
//! and dispatch with [`run_attack`].
//!
//! ```
//! use ril_attacks::prelude::*;
//! use ril_core::{Obfuscator, RilBlockSpec};
//! use ril_netlist::generators;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let host = generators::adder(8);
//! let locked = Obfuscator::new(RilBlockSpec::size_2x2()).seed(1).obfuscate(&host)?;
//! let cfg = AttackConfig {
//!     timeout: Some(Duration::from_secs(20)),
//!     ..AttackConfig::default()
//! };
//! let outcome = run_attack(AttackKind::Sat, &locked, &cfg)?;
//! println!("{}", outcome.report);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod appsat;
pub mod attack;
pub mod json;
mod miter;
pub mod oracle;
pub mod prelude;
pub mod preprocess;
pub mod removal;
pub mod report;
pub mod satattack;
pub mod scansat;
mod session;

pub use appsat::AppSatConfig;
pub use attack::{
    default_solver_threads, run_attack, AppSatAttack, Attack, AttackConfig, AttackKind,
    AttackOutcome, RemovalAttack, SatAttack, ScanSatAttack,
};
pub use oracle::{attacker_view, Oracle, OracleError, OracleSource};
pub use preprocess::{bva_stats, encoding_stats, EncodingStats};
pub use removal::RemovalReport;
pub use report::{AttackReport, AttackResult, IterationStats};
pub use satattack::{default_timeout, SatAttackConfig};
pub use scansat::{output_inversion_lock, scansat_model_attack};
