//! # ril-attacks — the oracle-guided adversary suite
//!
//! Everything the paper attacks RIL-Blocks with (and the baselines those
//! attacks *do* break):
//!
//! * [`satattack`] — the oracle-guided SAT attack with a CaDiCaL-class
//!   CDCL backend, optional one-layer one-hot routing re-encoding.
//! * [`appsat`] — the approximate attack, with error-estimation rounds.
//! * [`removal`] — removal + bypass of key-dependent logic.
//! * [`scansat`] — the scan-chain modelling attack and the
//!   boundary-inversion victim it was designed for.
//! * [`oracle`] — the activated-IC black box (scan accesses assert `SE`,
//!   so Scan-Enable-defended designs answer with corrupted responses).
//! * [`preprocess`] — CNF statistics and BVA preprocessing.
//! * [`json`] — the hand-rolled JSON reader matching the suite's
//!   hand-rolled writers (no crates-io `serde` in this environment).
//!
//! ## Quickstart
//!
//! ```
//! use ril_attacks::{run_sat_attack, SatAttackConfig};
//! use ril_core::{Obfuscator, RilBlockSpec};
//! use ril_netlist::generators;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let host = generators::adder(8);
//! let locked = Obfuscator::new(RilBlockSpec::size_2x2()).seed(1).obfuscate(&host)?;
//! let cfg = SatAttackConfig {
//!     timeout: Some(Duration::from_secs(20)),
//!     ..SatAttackConfig::default()
//! };
//! let report = run_sat_attack(&locked, &cfg)?;
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod appsat;
pub mod json;
mod miter;
pub mod oracle;
pub mod preprocess;
pub mod removal;
pub mod report;
pub mod satattack;
pub mod scansat;
mod session;

pub use appsat::{appsat_attack, run_appsat, AppSatConfig};
pub use oracle::{attacker_view, Oracle};
pub use preprocess::{bva_stats, encoding_stats, EncodingStats};
pub use removal::{removal_attack, RemovalReport};
pub use report::{AttackReport, AttackResult, IterationStats};
pub use satattack::{default_timeout, run_sat_attack, sat_attack, SatAttackConfig};
pub use scansat::{output_inversion_lock, scansat_attack};
