//! Attack-side CNF preprocessing and instance-hardness statistics.
//!
//! The paper's Section III-A argues SAT-hardness through the
//! clause-to-variable ratio and the structure the MUX trees impose on the
//! DPLL search; this module measures those quantities for locked netlists
//! and applies the BVA reduction of the Section IV-B attack pipeline.

use ril_netlist::{Netlist, NetlistError};
use ril_sat::bva::{bounded_variable_addition, BvaReport};
use ril_sat::{encode_netlist, Cnf};
use std::fmt;

/// Size statistics of a CNF encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodingStats {
    /// Variable count.
    pub vars: usize,
    /// Clause count.
    pub clauses: usize,
    /// Literal occurrences.
    pub literals: usize,
    /// Clause-to-variable ratio (the SAT-hardness proxy of Section III-A).
    pub ratio: f64,
}

impl fmt::Display for EncodingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vars, {} clauses, {} literals, c/v = {:.2}",
            self.vars, self.clauses, self.literals, self.ratio
        )
    }
}

fn stats_of(cnf: &Cnf) -> EncodingStats {
    EncodingStats {
        vars: cnf.num_vars(),
        clauses: cnf.num_clauses(),
        literals: cnf.num_literals(),
        ratio: cnf.clause_to_var_ratio(),
    }
}

/// Tseitin-encodes a netlist and reports its CNF statistics.
///
/// # Errors
///
/// Fails on sequential netlists.
pub fn encoding_stats(nl: &Netlist) -> Result<EncodingStats, NetlistError> {
    let (cnf, _) =
        encode_netlist(nl).map_err(|_| NetlistError::InvalidId("sequential netlist".into()))?;
    Ok(stats_of(&cnf))
}

/// Encodes, then applies BVA; returns (before, after, BVA report).
///
/// # Errors
///
/// Fails on sequential netlists.
pub fn bva_stats(
    nl: &Netlist,
    min_occurrences: usize,
    max_rounds: usize,
) -> Result<(EncodingStats, EncodingStats, BvaReport), NetlistError> {
    let (mut cnf, _) =
        encode_netlist(nl).map_err(|_| NetlistError::InvalidId("sequential netlist".into()))?;
    let before = stats_of(&cnf);
    let report = bounded_variable_addition(&mut cnf, min_occurrences, max_rounds);
    Ok((before, stats_of(&cnf), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_core::{Obfuscator, RilBlockSpec};
    use ril_netlist::generators;

    #[test]
    fn locking_raises_clause_to_var_ratio_structure() {
        let host = generators::adder(8);
        let plain = encoding_stats(&host).unwrap();
        let locked = Obfuscator::new(RilBlockSpec::size_8x8x8())
            .seed(2)
            .obfuscate(&host)
            .unwrap();
        let obf = encoding_stats(&locked.netlist).unwrap();
        assert!(obf.vars > plain.vars);
        assert!(obf.clauses > plain.clauses);
        // MUX-heavy key logic adds ~6 clauses per 1-output-var gate,
        // pushing the ratio up.
        assert!(obf.ratio >= plain.ratio);
    }

    #[test]
    fn bva_reduces_literals_on_locked_instances() {
        let host = generators::multiplier(5);
        let locked = Obfuscator::new(RilBlockSpec::size_8x8())
            .blocks(2)
            .seed(3)
            .obfuscate(&host)
            .unwrap();
        let (before, after, report) = bva_stats(&locked.netlist, 6, 16).unwrap();
        if report.new_vars > 0 {
            assert!(after.vars > before.vars);
            assert!(after.literals <= before.literals + 6 * report.new_vars);
        }
    }

    #[test]
    fn stats_display() {
        let host = generators::adder(4);
        let s = encoding_stats(&host).unwrap();
        let text = s.to_string();
        assert!(text.contains("vars"));
        assert!(text.contains("c/v"));
    }
}
