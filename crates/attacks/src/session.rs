//! The shared oracle-guided attack driver.
//!
//! The exact SAT attack, AppSAT and (through the SAT attack) ScanSAT all
//! run the same inner machine: solve the persistent miter for a
//! distinguishing input, query the oracle, append the I/O constraint, and
//! eventually extract a key from the persistent finder. [`AttackSession`]
//! owns that machine — the incremental [`AttackInstance`], the wall-clock
//! and iteration budgets, and the oracle-query baseline — so the attack
//! entry points reduce to policy around [`AttackSession::step`]. It is also
//! the single place where per-iteration solver statistics are lifted out of
//! the miter session's [`ril_sat::SolveRecord`]s into the
//! [`AttackReport`].

use crate::miter::AttackInstance;
use crate::oracle::{OracleError, OracleSource};
use crate::report::{AttackReport, AttackResult, IterationStats};
use ril_core::LockedCircuit;
use ril_netlist::Netlist;
use ril_sat::{Budget, Outcome, SolverConfig};
use std::time::{Duration, Instant};

/// Outcome of one DIP iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DipStep {
    /// A DIP was found, queried, and its constraint appended.
    Distinguished,
    /// Miter UNSAT: every surviving key is I/O-equivalent.
    Converged,
    /// The wall-clock or iteration budget ran out.
    Budget,
    /// The oracle's response contradicts key-independent logic — no key can
    /// explain the oracle (the Scan-Enable defense manifests here).
    OracleInconsistent,
    /// The oracle access itself failed (remote transport/protocol error).
    OracleFailed(OracleError),
}

/// One long-lived oracle-guided attack over a persistent
/// [`AttackInstance`].
pub(crate) struct AttackSession<'a> {
    nl: &'a Netlist,
    pub(crate) inst: AttackInstance,
    start: Instant,
    queries_before: u64,
    timeout: Option<Duration>,
    max_iterations: Option<usize>,
    pub(crate) iterations: usize,
}

impl<'a> AttackSession<'a> {
    /// Builds the miter/finder sessions (exactly once for the whole attack)
    /// and starts the clocks.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no key inputs, is sequential, or its
    /// data-input count does not match the oracle.
    pub(crate) fn new(
        nl: &'a Netlist,
        oracle: &dyn OracleSource,
        solver_config: SolverConfig,
        one_hot_meta: Option<&LockedCircuit>,
        timeout: Option<Duration>,
        max_iterations: Option<usize>,
    ) -> AttackSession<'a> {
        let inst = AttackInstance::new(nl, solver_config, one_hot_meta);
        assert_eq!(
            inst.oracle_positions.len(),
            oracle.input_width(),
            "oracle/netlist input mismatch"
        );
        AttackSession {
            nl,
            inst,
            start: Instant::now(),
            queries_before: oracle.queries(),
            timeout,
            max_iterations,
            iterations: 0,
        }
    }

    /// Time left in the attack's wall-clock budget (`None` = unbounded).
    pub(crate) fn remaining(&self) -> Option<Duration> {
        self.timeout.map(|t| t.saturating_sub(self.start.elapsed()))
    }

    /// Runs one DIP iteration: budget check, miter solve on the warm
    /// session, oracle query, constraint append. Each iteration is an
    /// `iteration` trace span carrying the miter size and the cumulative
    /// DIP count (= I/O constraints pruning the key space so far).
    pub(crate) fn step(&mut self, oracle: &mut dyn OracleSource) -> DipStep {
        let mut span = ril_trace::span("iteration", ril_trace::Phase::Iteration);
        let step = self.step_inner(oracle);
        if span.is_active() {
            span.record_str(
                "step",
                match step {
                    DipStep::Distinguished => "distinguished",
                    DipStep::Converged => "converged",
                    DipStep::Budget => "budget",
                    DipStep::OracleInconsistent => "oracle_inconsistent",
                    DipStep::OracleFailed(_) => "oracle_failed",
                },
            );
            span.record_u64("iteration", self.iterations as u64);
            span.record_u64("dips_recorded", self.iterations as u64);
            span.record_u64("miter_vars", self.inst.miter.num_vars() as u64);
            if step == DipStep::Distinguished {
                ril_trace::counter("attack.dips", 1);
            }
        }
        step
    }

    fn step_inner(&mut self, oracle: &mut dyn OracleSource) -> DipStep {
        match self.remaining() {
            Some(left) if left.is_zero() => return DipStep::Budget,
            left => self.inst.miter.set_budget(Budget::from_timeout(left)),
        }
        if self.max_iterations.is_some_and(|m| self.iterations >= m) {
            return DipStep::Budget;
        }
        match self.inst.miter.solve() {
            Outcome::Unknown => DipStep::Budget,
            Outcome::Unsat => DipStep::Converged,
            Outcome::Sat => {
                self.iterations += 1;
                let dip_full = self.inst.dip_from_model();
                let response = {
                    let _q = ril_trace::span("oracle_query", ril_trace::Phase::Other);
                    match oracle.try_query(&self.inst.oracle_dip(&dip_full)) {
                        Ok(r) => r,
                        Err(e) => return DipStep::OracleFailed(e),
                    }
                };
                match self.inst.add_dip(self.nl, &dip_full, &response) {
                    Ok(()) => DipStep::Distinguished,
                    Err(()) => DipStep::OracleInconsistent,
                }
            }
        }
    }

    /// Appends an externally chosen I/O constraint (AppSAT's random-query
    /// reinforcement). `Err(())` on oracle inconsistency.
    pub(crate) fn reinforce(&mut self, dip_full: &[bool], response: &[bool]) -> Result<(), ()> {
        self.inst.add_dip(self.nl, dip_full, response)
    }

    /// Solves the persistent finder for a key consistent with everything
    /// recorded so far, under the remaining budget (floored at 100 ms so a
    /// nearly-expired attack still gets a token extraction attempt).
    pub(crate) fn extract_key(&mut self) -> Result<Option<Vec<bool>>, ()> {
        let budget = self.remaining().map(|d| d.max(Duration::from_millis(100)));
        self.inst.extract_key(budget)
    }

    /// [`AttackSession::extract_key`] under extra assumptions against the
    /// same warm finder (`Ok(None)` = no key under these assumptions; the
    /// caller may fall back to an unconstrained extraction).
    pub(crate) fn extract_key_under(
        &mut self,
        assumptions: &[ril_sat::Lit],
    ) -> Result<Option<Vec<bool>>, ()> {
        let budget = self.remaining().map(|d| d.max(Duration::from_millis(100)));
        self.inst.extract_key_under(assumptions, budget)
    }

    /// Finalizes the attack into an [`AttackReport`], lifting the miter
    /// session's per-solve records into per-iteration statistics.
    pub(crate) fn report(&self, oracle: &dyn OracleSource, result: AttackResult) -> AttackReport {
        let iteration_stats = self
            .inst
            .miter
            .records()
            .iter()
            .enumerate()
            .map(|(i, r)| IterationStats {
                iteration: i + 1,
                wall: r.wall,
                stats: r.stats,
                clauses_added: r.clauses_added,
            })
            .collect();
        AttackReport {
            result,
            wall: self.start.elapsed(),
            iterations: self.iterations,
            oracle_queries: oracle.queries() - self.queries_before,
            functionally_correct: None,
            miter_stats: self.inst.miter.stats(),
            finder_stats: self.inst.finder.stats(),
            iteration_stats,
        }
    }
}
