//! The shared oracle-guided attack driver.
//!
//! The exact SAT attack, AppSAT and (through the SAT attack) ScanSAT all
//! run the same inner machine: solve the persistent miter for a
//! distinguishing input, query the oracle, append the I/O constraint, and
//! eventually extract a key from the persistent finder. [`AttackSession`]
//! owns that machine — the incremental [`AttackInstance`], the wall-clock
//! and iteration budgets, and the oracle-query baseline — so the attack
//! entry points reduce to policy around [`AttackSession::step`]. It is also
//! the single place where per-iteration solver statistics are lifted out of
//! the miter session's [`ril_sat::SolveRecord`]s into the
//! [`AttackReport`].

use crate::miter::AttackInstance;
use crate::oracle::{OracleError, OracleSource};
use crate::report::{AttackReport, AttackResult, IterationStats};
use ril_core::LockedCircuit;
use ril_netlist::Netlist;
use ril_sat::{Budget, Outcome, SolverConfig};
use std::time::{Duration, Instant};

/// Outcome of one DIP iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DipStep {
    /// A DIP was found, queried, and its constraint appended.
    Distinguished,
    /// Miter UNSAT: every surviving key is I/O-equivalent.
    Converged,
    /// The wall-clock or iteration budget ran out.
    Budget,
    /// The oracle's response contradicts key-independent logic — no key can
    /// explain the oracle (the Scan-Enable defense manifests here).
    OracleInconsistent,
    /// The oracle access itself failed (remote transport/protocol error).
    OracleFailed(OracleError),
}

/// One long-lived oracle-guided attack over a persistent
/// [`AttackInstance`].
pub(crate) struct AttackSession<'a> {
    nl: &'a Netlist,
    pub(crate) inst: AttackInstance,
    start: Instant,
    queries_before: u64,
    timeout: Option<Duration>,
    max_iterations: Option<usize>,
    pub(crate) iterations: usize,
}

impl<'a> AttackSession<'a> {
    /// Builds the miter/finder sessions (exactly once for the whole attack)
    /// and starts the clocks.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no key inputs, is sequential, or its
    /// data-input count does not match the oracle.
    pub(crate) fn new(
        nl: &'a Netlist,
        oracle: &dyn OracleSource,
        solver_config: SolverConfig,
        one_hot_meta: Option<&LockedCircuit>,
        timeout: Option<Duration>,
        max_iterations: Option<usize>,
    ) -> AttackSession<'a> {
        let mut inst = AttackInstance::new(nl, solver_config, one_hot_meta);
        assert_eq!(
            inst.oracle_positions.len(),
            oracle.input_width(),
            "oracle/netlist input mismatch"
        );
        // Start from the oracle's current key generation (a no-op retire:
        // nothing is recorded yet).
        if let Some(g) = oracle.generation() {
            inst.observe_generation(g);
        }
        AttackSession {
            nl,
            inst,
            start: Instant::now(),
            queries_before: oracle.queries(),
            timeout,
            max_iterations,
            iterations: 0,
        }
    }

    /// Time left in the attack's wall-clock budget (`None` = unbounded).
    pub(crate) fn remaining(&self) -> Option<Duration> {
        self.timeout.map(|t| t.saturating_sub(self.start.elapsed()))
    }

    /// Runs one DIP iteration: budget check, miter solve on the warm
    /// session, oracle query, constraint append. Each iteration is an
    /// `iteration` trace span carrying the miter size and the cumulative
    /// DIP count (= I/O constraints pruning the key space so far).
    pub(crate) fn step(&mut self, oracle: &mut dyn OracleSource) -> DipStep {
        let mut span = ril_trace::span("iteration", ril_trace::Phase::Iteration);
        let step = self.step_inner(oracle);
        if span.is_active() {
            span.record_str(
                "step",
                match step {
                    DipStep::Distinguished => "distinguished",
                    DipStep::Converged => "converged",
                    DipStep::Budget => "budget",
                    DipStep::OracleInconsistent => "oracle_inconsistent",
                    DipStep::OracleFailed(_) => "oracle_failed",
                },
            );
            span.record_u64("iteration", self.iterations as u64);
            span.record_u64("dips_recorded", self.iterations as u64);
            span.record_u64("miter_vars", self.inst.miter.num_vars() as u64);
            if step == DipStep::Distinguished {
                ril_trace::counter("attack.dips", 1);
            }
        }
        step
    }

    fn step_inner(&mut self, oracle: &mut dyn OracleSource) -> DipStep {
        match self.remaining() {
            Some(left) if left.is_zero() => return DipStep::Budget,
            left => self.inst.miter.set_budget(Budget::from_timeout(left)),
        }
        if self.max_iterations.is_some_and(|m| self.iterations >= m) {
            return DipStep::Budget;
        }
        // A morphing target bumps its key generation; constraints recorded
        // against the previous generation are retired before this round's
        // miter solve so a stale convergence (or contradiction) cannot
        // leak through.
        if let Some(g) = oracle.generation() {
            self.inst.observe_generation(g);
        }
        match self.inst.solve_miter() {
            Outcome::Unknown => DipStep::Budget,
            Outcome::Unsat => DipStep::Converged,
            Outcome::Sat => {
                self.iterations += 1;
                let dip_full = self.inst.dip_from_model();
                let response = {
                    let _q = ril_trace::span("oracle_query", ril_trace::Phase::Other);
                    match oracle.try_query(&self.inst.oracle_dip(&dip_full)) {
                        Ok(r) => r,
                        Err(e) => return DipStep::OracleFailed(e),
                    }
                };
                // The query itself may have raced a morph; tag the
                // constraint with the generation the response belongs to.
                if let Some(g) = oracle.generation() {
                    self.inst.observe_generation(g);
                }
                match self.inst.add_dip(self.nl, &dip_full, &response) {
                    Ok(()) => DipStep::Distinguished,
                    Err(()) => DipStep::OracleInconsistent,
                }
            }
        }
    }

    /// Appends an externally chosen I/O constraint (AppSAT's random-query
    /// reinforcement). `Err(())` on oracle inconsistency.
    pub(crate) fn reinforce(&mut self, dip_full: &[bool], response: &[bool]) -> Result<(), ()> {
        self.inst.add_dip(self.nl, dip_full, response)
    }

    /// Solves the persistent finder for a key consistent with everything
    /// recorded so far, under the remaining budget (floored at 100 ms so a
    /// nearly-expired attack still gets a token extraction attempt).
    pub(crate) fn extract_key(&mut self) -> Result<Option<Vec<bool>>, ()> {
        let budget = self.remaining().map(|d| d.max(Duration::from_millis(100)));
        self.inst.extract_key(budget)
    }

    /// [`AttackSession::extract_key`] under extra assumptions against the
    /// same warm finder (`Ok(None)` = no key under these assumptions; the
    /// caller may fall back to an unconstrained extraction).
    pub(crate) fn extract_key_under(
        &mut self,
        assumptions: &[ril_sat::Lit],
    ) -> Result<Option<Vec<bool>>, ()> {
        let budget = self.remaining().map(|d| d.max(Duration::from_millis(100)));
        self.inst.extract_key_under(assumptions, budget)
    }

    /// Finalizes the attack into an [`AttackReport`], lifting the miter
    /// session's per-solve records into per-iteration statistics.
    pub(crate) fn report(&self, oracle: &dyn OracleSource, result: AttackResult) -> AttackReport {
        let iteration_stats = self
            .inst
            .miter
            .records()
            .iter()
            .enumerate()
            .map(|(i, r)| IterationStats {
                iteration: i + 1,
                wall: r.wall,
                stats: r.stats,
                clauses_added: r.clauses_added,
            })
            .collect();
        AttackReport {
            result,
            wall: self.start.elapsed(),
            iterations: self.iterations,
            oracle_queries: oracle.queries() - self.queries_before,
            functionally_correct: None,
            miter_stats: self.inst.miter.stats(),
            finder_stats: self.inst.finder.stats(),
            iteration_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{attacker_view, Oracle, OracleError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ril_core::{morph_all, Obfuscator, RilBlockSpec};
    use ril_netlist::generators;

    /// An activated chip that morphs itself: after `morph_after` chip
    /// accesses the key is re-burned (function preserved) and the exposed
    /// generation bumps, like `ril-serve`'s dynamic-morphing scheduler.
    struct MorphingOracle {
        inner: Oracle,
        locked: LockedCircuit,
        rng: StdRng,
        generation: u64,
        morph_after: Option<u64>,
        morph_every_query: bool,
    }

    impl MorphingOracle {
        fn new(locked: LockedCircuit) -> MorphingOracle {
            let inner = Oracle::new(&locked).unwrap();
            MorphingOracle {
                inner,
                locked,
                rng: StdRng::seed_from_u64(0x4D0),
                generation: 0,
                morph_after: None,
                morph_every_query: false,
            }
        }

        fn morph(&mut self) {
            morph_all(&mut self.locked, &mut self.rng);
            self.inner.rekey(&self.locked);
            self.generation += 1;
        }
    }

    impl OracleSource for MorphingOracle {
        fn input_width(&self) -> usize {
            self.inner.input_width()
        }

        fn output_width(&self) -> usize {
            self.inner.output_width()
        }

        fn try_query(&mut self, inputs: &[bool]) -> Result<Vec<bool>, OracleError> {
            // Morph *before* answering: the response is then computed under
            // the generation this source reports afterwards, matching a
            // remote chip whose responses are stamped with the generation
            // that produced them.
            if self.morph_every_query || self.morph_after == Some(self.inner.queries()) {
                self.morph();
            }
            Ok(self.inner.query(inputs))
        }

        fn queries(&self) -> u64 {
            self.inner.queries()
        }

        fn generation(&self) -> Option<u64> {
            Some(self.generation)
        }
    }

    fn locked_adder() -> LockedCircuit {
        let host = generators::adder(8);
        Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .seed(5)
            .obfuscate(&host)
            .unwrap()
    }

    #[test]
    fn generation_bump_retires_dips_and_attack_still_converges() {
        // Without the scan defense a morph preserves even the observable
        // function, so retiring is conservative — the attack must re-gather
        // its constraints and still land a functionally correct key.
        let locked = locked_adder();
        let view = attacker_view(&locked);
        let mut oracle = MorphingOracle::new(locked.clone());
        oracle.morph_after = Some(3);
        let mut sess = AttackSession::new(
            &view,
            &oracle,
            SolverConfig::default(),
            None,
            Some(Duration::from_secs(60)),
            None,
        );
        loop {
            match sess.step(&mut oracle) {
                DipStep::Distinguished => {}
                DipStep::Converged => break,
                other => panic!("unexpected step outcome: {other:?}"),
            }
        }
        let key = sess
            .extract_key()
            .expect("budget not exhausted")
            .expect("a key consistent with the current generation exists");
        assert!(locked.equivalent_under_key(&key, 32).unwrap());
        assert!(
            sess.inst.retired_dips() >= 3,
            "the generation bump must retire the DIPs recorded before it \
             (retired {})",
            sess.inst.retired_dips()
        );
    }

    #[test]
    fn morph_every_query_starves_the_attack() {
        // The dynamic-defense limit case: every response belongs to a new
        // generation, so each round's constraint retires before the next
        // miter solve and the attack never accumulates progress.
        let locked = locked_adder();
        let view = attacker_view(&locked);
        let mut oracle = MorphingOracle::new(locked);
        oracle.morph_every_query = true;
        let mut sess = AttackSession::new(
            &view,
            &oracle,
            SolverConfig::default(),
            None,
            Some(Duration::from_secs(60)),
            Some(6),
        );
        loop {
            match sess.step(&mut oracle) {
                DipStep::Distinguished => {}
                DipStep::Budget => break,
                other => panic!("expected iteration starvation, got {other:?}"),
            }
        }
        assert_eq!(sess.iterations, 6, "every round must yield a fresh DIP");
        // The morph behind round k's response only becomes visible when
        // that response arrives, so round k-1's constraint retires after
        // round k's query: 5 of the 6 recorded DIPs are retired, the last
        // one never saw a newer generation.
        assert_eq!(sess.inst.retired_dips(), 5);
    }

    #[test]
    fn static_oracle_keeps_all_dips() {
        let locked = locked_adder();
        let view = attacker_view(&locked);
        let mut oracle = Oracle::new(&locked).unwrap();
        let mut sess = AttackSession::new(
            &view,
            &oracle,
            SolverConfig::default(),
            None,
            Some(Duration::from_secs(60)),
            None,
        );
        loop {
            match sess.step(&mut oracle) {
                DipStep::Distinguished => {}
                DipStep::Converged => break,
                other => panic!("unexpected step outcome: {other:?}"),
            }
        }
        assert_eq!(sess.inst.retired_dips(), 0);
        let key = sess.extract_key().unwrap().unwrap();
        assert!(locked.equivalent_under_key(&key, 32).unwrap());
    }
}
