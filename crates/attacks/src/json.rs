//! A minimal JSON reader for the machine-readable artifacts the suite
//! writes (`AttackReport::to_json`, the bench crate's cell cache and run
//! manifests).
//!
//! The build environment has no crates-io access, so there is no `serde`;
//! every producer in this workspace hand-rolls its JSON output. This
//! module is the matching hand-rolled *consumer*: a small recursive-descent
//! parser into a [`JsonValue`] tree plus typed accessors. It accepts
//! exactly the JSON this workspace emits (objects, arrays, strings with
//! `\uXXXX` escapes, finite numbers, booleans, null) — enough to round-trip
//! our own artifacts, not a general-purpose validator.

use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

/// Parse failure: a message and the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the offending byte offset.
    pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects negatives/fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Escapes a string for embedding in hand-rolled JSON output (the inverse
/// of what the parser unescapes). Shared by every producer in the suite.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str(r#"\""#),
            '\\' => out.push_str(r"\\"),
            '\n' => out.push_str(r"\n"),
            '\r' => out.push_str(r"\r"),
            '\t' => out.push_str(r"\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_literal("true").map(|_| JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| JsonValue::Bool(false)),
            Some(b'n') => self.eat_literal("null").map(|_| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our own output.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(JsonValue::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("-1.5e2").unwrap(), JsonValue::Num(-150.0));
        assert_eq!(
            JsonValue::parse(r#""a\nb""#).unwrap(),
            JsonValue::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a":[1,2,{"b":"x"}],"c":null,"d":{"e":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert!(v.get("c").unwrap().is_null());
        assert_eq!(v.get("d").unwrap().get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn escape_round_trips() {
        let original = "he said \"no\"\n\ttab \\ slash \u{1}";
        let doc = format!(r#"{{"s":"{}"}}"#, escape(original));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_and_raw_unicode() {
        let v = JsonValue::parse(r#""é ∞""#).unwrap();
        assert_eq!(v.as_str(), Some("é ∞"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn typed_accessors() {
        let v = JsonValue::parse("3").unwrap();
        assert_eq!(v.as_u64(), Some(3));
        assert_eq!(JsonValue::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-3").unwrap().as_u64(), None);
        assert_eq!(JsonValue::Null.get("x"), None);
    }
}
