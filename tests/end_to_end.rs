//! Cross-crate integration: the full defender→attacker pipelines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ril_blocks::attacks::satattack::sat_attack;
use ril_blocks::attacks::{attacker_view, run_attack, AttackConfig, AttackKind, Oracle};
use ril_blocks::core::{morph_all, InsertionPolicy, KeyBitKind, Obfuscator, RilBlockSpec};
use ril_blocks::netlist::{generators, parse_bench, write_bench, Simulator};
use std::time::Duration;

fn fast_cfg() -> AttackConfig {
    AttackConfig {
        timeout: Some(Duration::from_secs(45)),
        ..AttackConfig::default()
    }
}

#[test]
fn lock_export_reimport_attack_verify() {
    // Lock → write .bench → parse back → attack the re-imported netlist.
    let host = generators::adder(8);
    let locked = Obfuscator::new(RilBlockSpec::size_2x2())
        .blocks(2)
        .seed(77)
        .obfuscate(&host)
        .expect("lock");
    let text = write_bench(&locked.netlist);
    let reimported = parse_bench("reimported", &text).expect("parse");
    assert_eq!(reimported.key_inputs().len(), locked.key_width());

    let mut oracle = Oracle::new(&locked).expect("oracle");
    let report = sat_attack(&reimported, &mut oracle, &fast_cfg().sat_config());
    let key = report.result.key().expect("attack succeeds on 2x2 blocks");
    assert!(locked.equivalent_under_key(key, 32).expect("sim ok"));
}

#[test]
fn every_block_shape_round_trips_through_the_full_flow() {
    for (spec, blocks) in [
        (RilBlockSpec::size_2x2(), 3usize),
        (RilBlockSpec::parse("4x4").unwrap(), 2),
        (RilBlockSpec::parse("4x4x4").unwrap(), 1),
        (RilBlockSpec::size_8x8(), 1),
        (RilBlockSpec::size_8x8x8(), 1),
    ] {
        let host = generators::multiplier(6);
        let locked = Obfuscator::new(spec)
            .blocks(blocks)
            .seed(3)
            .obfuscate(&host)
            .unwrap_or_else(|e| panic!("{spec}: {e}"));
        locked.netlist.validate().expect("valid netlist");
        assert!(locked.verify(16).expect("sim ok"), "{spec}");
        assert_eq!(locked.key_width(), blocks * spec.keys_per_block());
    }
}

#[test]
fn cone_policy_also_produces_correct_locks() {
    let host = generators::benchmark("b15").expect("known benchmark");
    let locked = Obfuscator::new(RilBlockSpec::size_8x8())
        .policy(InsertionPolicy::LargeCone)
        .seed(5)
        .obfuscate(&host)
        .expect("lock");
    assert!(locked.verify(8).expect("sim ok"));
}

#[test]
fn morph_then_attack_key_is_still_recoverable_but_different() {
    // Morphing changes the correct key; the SAT attack (against the fresh
    // oracle) recovers a key equivalent to the *morphed* one.
    let host = generators::adder(8);
    let mut locked = Obfuscator::new(RilBlockSpec::size_2x2())
        .blocks(2)
        .seed(31)
        .obfuscate(&host)
        .expect("lock");
    let before = locked.keys.bits().to_vec();
    let mut rng = StdRng::seed_from_u64(8);
    // Pair swaps are coin flips; morph until the key actually moved.
    for _ in 0..64 {
        morph_all(&mut locked, &mut rng);
        if locked.keys.bits() != before.as_slice() {
            break;
        }
    }
    assert!(locked.verify(16).expect("sim ok"));
    let report = run_attack(AttackKind::Sat, &locked, &fast_cfg())
        .expect("sim ok")
        .report;
    assert!(report.result.succeeded());
    assert_eq!(report.functionally_correct, Some(true));
    // The stored correct key differs from the pre-morph one.
    assert_ne!(locked.keys.bits(), before.as_slice());
}

#[test]
fn se_defense_blocks_sat_appsat_and_removal_together() {
    let host = generators::multiplier(5);
    let mut armed = None;
    for seed in 0..40 {
        let lc = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(3)
            .scan_obfuscation(true)
            .seed(seed)
            .obfuscate(&host)
            .expect("lock");
        if lc
            .keys
            .kinds()
            .iter()
            .zip(lc.keys.bits())
            .any(|(k, &v)| matches!(k, KeyBitKind::ScanEnable { .. }) && v)
        {
            armed = Some(lc);
            break;
        }
    }
    let locked = armed.expect("armed SE lock");

    let sat = run_attack(AttackKind::Sat, &locked, &fast_cfg())
        .expect("sim ok")
        .report;
    let sat_defended = !sat.result.succeeded() || sat.functionally_correct == Some(false);
    assert!(sat_defended, "SAT: {sat}");

    let app = run_attack(AttackKind::AppSat, &locked, &fast_cfg())
        .expect("sim ok")
        .report;
    let app_defended = !app.result.succeeded() || app.functionally_correct == Some(false);
    assert!(app_defended, "AppSAT: {app}");

    let rem = run_attack(
        AttackKind::Removal,
        &locked,
        &AttackConfig {
            patterns: 16,
            seed: 1,
            ..fast_cfg()
        },
    )
    .expect("sim ok")
    .removal
    .expect("removal outcome carries its native report");
    assert!(
        rem.error_rate > 0.01,
        "removal salvage error {}",
        rem.error_rate
    );
}

#[test]
fn attacker_view_is_simulatable_and_key_complete() {
    let host = generators::benchmark("gps").expect("known benchmark");
    let locked = Obfuscator::new(RilBlockSpec::size_8x8())
        .scan_obfuscation(true)
        .seed(4)
        .obfuscate(&host)
        .expect("lock");
    let view = attacker_view(&locked);
    view.validate().expect("valid view");
    let mut sim = Simulator::new(&view).expect("sim");
    let data = vec![0u64; view.data_inputs().len()];
    let keys = vec![0u64; view.key_inputs().len()];
    let outs = sim.eval_words(&view, &data, &keys);
    assert_eq!(outs.len(), host.outputs().len());
    assert_eq!(view.key_inputs().len(), locked.key_width());
}

#[test]
fn sequential_design_locks_through_the_scan_model() {
    // The paper's threat model: full scan access turns state into pseudo
    // I/O. Unroll a DFF-based LFSR, lock it, attack it.
    let mut seq = generators::sequential_lfsr(8, &[1, 2, 3, 7]);
    let dffs = seq.to_combinational();
    assert_eq!(dffs, 8);
    seq.validate().expect("valid combinational view");
    let locked = Obfuscator::new(RilBlockSpec::size_2x2())
        .blocks(2)
        .seed(3)
        .obfuscate(&seq)
        .expect("lock");
    assert!(locked.verify(16).expect("sim ok"));
    let report = run_attack(AttackKind::Sat, &locked, &fast_cfg())
        .expect("sim ok")
        .report;
    assert!(report.result.succeeded(), "{report}");
    assert_eq!(report.functionally_correct, Some(true));
}

#[test]
fn oracle_query_accounting_matches_attack_iterations() {
    let host = generators::adder(6);
    let locked = Obfuscator::new(RilBlockSpec::size_2x2())
        .seed(13)
        .obfuscate(&host)
        .expect("lock");
    let report = run_attack(AttackKind::Sat, &locked, &fast_cfg())
        .expect("sim ok")
        .report;
    // The plain SAT attack queries exactly once per DIP iteration.
    assert_eq!(report.oracle_queries, report.iterations as u64);
}
