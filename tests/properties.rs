//! Property-based cross-crate tests (proptest).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ril_blocks::core::banyan::BanyanNetwork;
use ril_blocks::core::lut::{complement_lut, swap_lut_inputs};
use ril_blocks::core::{Obfuscator, RilBlockSpec};
use ril_blocks::netlist::{generators, parse_bench, write_bench, Simulator};
use ril_blocks::sat::{encode_netlist, Cnf, Lit, Outcome, Session, Solver};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The CNF encoding of a random circuit agrees with bit-parallel
    /// simulation on random patterns.
    #[test]
    fn cnf_encoding_matches_simulation(seed in 0u64..5000, pattern in 0u64..u64::MAX) {
        let nl = generators::random_circuit(seed, 6, 30, 4);
        let (cnf, vars) = encode_netlist(&nl).expect("combinational");
        let mut sim = Simulator::new(&nl).expect("sim");
        let bits: Vec<bool> = (0..6).map(|i| (pattern >> i) & 1 == 1).collect();
        let expect = sim.eval_bits(&nl, &bits);
        let mut solver = Solver::from_cnf(&cnf);
        let assumptions: Vec<Lit> = nl.inputs().iter().zip(&bits)
            .map(|(&n, &b)| vars.var(n).lit(!b)).collect();
        prop_assert_eq!(solver.solve_with_assumptions(&assumptions), Outcome::Sat);
        for (&o, &e) in nl.outputs().iter().zip(&expect) {
            prop_assert_eq!(solver.model()[vars.var(o).index()], e);
        }
    }

    /// `.bench` serialization round-trips functionally.
    #[test]
    fn bench_round_trip_preserves_function(seed in 0u64..5000, pattern in 0u64..u64::MAX) {
        let nl = generators::random_circuit(seed, 5, 25, 3);
        let back = parse_bench("rt", &write_bench(&nl)).expect("parse");
        let mut sim1 = Simulator::new(&nl).expect("sim");
        let mut sim2 = Simulator::new(&back).expect("sim");
        let bits: Vec<bool> = (0..5).map(|i| (pattern >> i) & 1 == 1).collect();
        // Output order may differ only if names differ — compare by name.
        let o1 = sim1.eval_bits(&nl, &bits);
        let o2 = sim2.eval_bits(&back, &bits);
        prop_assert_eq!(o1, o2);
    }

    /// Banyan routing always yields permutations, and found keys reproduce
    /// the requested permutation.
    #[test]
    fn banyan_route_find_roundtrip(width_pow in 1u32..4, keyseed in 0u64..10_000) {
        let n = 1usize << width_pow;
        let net = BanyanNetwork::new(n);
        let mut rng = StdRng::seed_from_u64(keyseed);
        let keys: Vec<bool> = (0..net.num_keys()).map(|_| rng.gen()).collect();
        let perm = net.route(&keys);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let found = net.find_keys(&perm, &mut rng, 0).expect("own permutation routable");
        prop_assert_eq!(net.route(&found), perm);
    }

    /// LUT truth-table transforms are involutions and commute as expected.
    #[test]
    fn lut_transforms(tt in 0u8..16) {
        prop_assert_eq!(swap_lut_inputs(swap_lut_inputs(tt)), tt);
        prop_assert_eq!(complement_lut(complement_lut(tt)), tt);
        prop_assert_eq!(
            complement_lut(swap_lut_inputs(tt)),
            swap_lut_inputs(complement_lut(tt))
        );
    }

    /// Obfuscation preserves functionality for random hosts, shapes, seeds.
    #[test]
    fn obfuscation_preserves_function(seed in 0u64..2000, shape in 0usize..3, scan in any::<bool>()) {
        let host = generators::random_circuit(seed, 8, 60, 6);
        let spec = [
            RilBlockSpec::size_2x2(),
            RilBlockSpec::parse("4x4").expect("valid"),
            RilBlockSpec::parse("4x4x4").expect("valid"),
        ][shape];
        // Random hosts may occasionally lack enough independent gates —
        // that is a legitimate (checked) error, not a failure.
        if let Ok(locked) = Obfuscator::new(spec)
            .scan_obfuscation(scan)
            .seed(seed)
            .obfuscate(&host)
        {
            prop_assert!(locked.netlist.validate().is_ok());
            prop_assert!(locked.verify(8).expect("sim ok"));
        }
    }

    /// An incremental [`Session`] fed random clause batches agrees with a
    /// from-scratch [`Solver`] on the accumulated formula after every
    /// batch — with and without random assumptions — and its SAT models
    /// satisfy everything added so far.
    #[test]
    fn incremental_session_matches_from_scratch(seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(3..10usize);
        let batches = rng.gen_range(1..6usize);
        let mut accumulated = Cnf::new();
        accumulated.new_vars(n);
        let mut session = Session::new();
        session.reserve_vars(n);
        for _ in 0..batches {
            // A random batch of clauses lands in both the live session and
            // the accumulated reference formula.
            let m = rng.gen_range(1..10usize);
            for _ in 0..m {
                let len = rng.gen_range(1..4usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(rng.gen_range(0..n), rng.gen()))
                    .collect();
                accumulated.add_clause(lits.clone());
                session.add_clause(lits);
            }
            let mut scratch = Solver::from_cnf(&accumulated);
            if rng.gen_bool(0.5) {
                // Plain solve.
                let outcome = session.solve();
                prop_assert_eq!(outcome, scratch.solve());
                if outcome == Outcome::Sat {
                    prop_assert!(accumulated.is_satisfied_by(session.model()));
                }
            } else {
                // Solve under random assumptions; the session must neither
                // poison itself nor disagree with the scratch solver.
                let k = rng.gen_range(0..=n.min(3));
                let assumptions: Vec<Lit> = (0..k)
                    .map(|_| Lit::new(rng.gen_range(0..n), rng.gen()))
                    .collect();
                let outcome = session.solve_under(&assumptions);
                prop_assert_eq!(outcome, scratch.solve_with_assumptions(&assumptions));
                if outcome == Outcome::Sat {
                    prop_assert!(accumulated.is_satisfied_by(session.model()));
                    for a in &assumptions {
                        prop_assert_eq!(session.model()[a.var().index()], a.target());
                    }
                }
            }
        }
        prop_assert_eq!(session.solve_count(), batches);
    }

    /// Solver models always satisfy the formula (soundness of SAT answers).
    #[test]
    fn solver_models_satisfy(seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(3..12usize);
        let m = rng.gen_range(3..40usize);
        let mut cnf = Cnf::new();
        cnf.new_vars(n);
        for _ in 0..m {
            let len = rng.gen_range(1..4usize);
            let lits: Vec<Lit> = (0..len).map(|_| Lit::new(rng.gen_range(0..n), rng.gen())).collect();
            cnf.add_clause(lits);
        }
        let mut solver = Solver::from_cnf(&cnf);
        if solver.solve() == Outcome::Sat {
            prop_assert!(cnf.is_satisfied_by(solver.model()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dynamic morphing preserves functionality on random hosts.
    #[test]
    fn morphing_preserves_function(seed in 0u64..500) {
        let host = generators::multiplier(5);
        if let Ok(mut locked) = Obfuscator::new(RilBlockSpec::parse("4x4x4").expect("valid"))
            .seed(seed)
            .obfuscate(&host)
        {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
            ril_blocks::core::morph_all(&mut locked, &mut rng);
            prop_assert!(locked.verify(8).expect("sim ok"));
        }
    }
}
