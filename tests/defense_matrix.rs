//! The Table V story as an integration test: which attacks break which
//! schemes. Small instances, generous assertions on the *direction* of the
//! results (exact runtimes are the bench harness's job).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ril_blocks::attacks::{output_inversion_lock, run_attack, AttackConfig, AttackKind};
use ril_blocks::core::baselines::{antisat_lock, sfll_lock, xor_lock};
use ril_blocks::core::metrics::output_corruptibility;
use ril_blocks::core::{Obfuscator, RilBlockSpec};
use ril_blocks::netlist::generators;
use ril_blocks::sca::{key_recovery_rate, LutTechnology};
use std::time::Duration;

fn cfg() -> AttackConfig {
    AttackConfig {
        timeout: Some(Duration::from_secs(45)),
        ..AttackConfig::default()
    }
}

#[test]
fn sat_attack_breaks_all_small_baselines() {
    let host = generators::adder(8);
    for (name, locked) in [
        ("xor", xor_lock(&host, 10, 1).expect("lock")),
        ("antisat", antisat_lock(&host, 4, 2).expect("lock")),
        ("sfll", sfll_lock(&host, 5, 3).expect("lock")),
    ] {
        let report = run_attack(AttackKind::Sat, &locked, &cfg())
            .expect("sim ok")
            .report;
        assert!(report.result.succeeded(), "{name}: {report}");
        assert_eq!(report.functionally_correct, Some(true), "{name}");
    }
}

#[test]
fn more_ril_blocks_take_more_iterations() {
    // The monotonic trend behind Table I, measured in DIP iterations
    // (stabler than wall-clock in CI).
    let host = generators::adder(10);
    let mut iters = Vec::new();
    for blocks in [1usize, 4] {
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(blocks)
            .seed(42)
            .obfuscate(&host)
            .expect("lock");
        let report = run_attack(AttackKind::Sat, &locked, &cfg())
            .expect("sim ok")
            .report;
        assert!(report.result.succeeded(), "{blocks} blocks: {report}");
        iters.push(report.iterations);
    }
    assert!(
        iters[1] >= iters[0],
        "4 blocks ({}) should need at least as many DIPs as 1 ({})",
        iters[1],
        iters[0]
    );
}

#[test]
fn removal_splits_point_functions_from_ril() {
    let host = generators::adder(8);
    let sfll = sfll_lock(&host, 8, 4).expect("lock");
    let ril = Obfuscator::new(RilBlockSpec::size_8x8())
        .seed(5)
        .obfuscate(&host)
        .expect("lock");
    let removal_cfg = AttackConfig {
        patterns: 32,
        seed: 1,
        ..cfg()
    };
    let r_sfll = run_attack(AttackKind::Removal, &sfll, &removal_cfg)
        .expect("sim ok")
        .removal
        .expect("native removal report");
    let r_ril = run_attack(AttackKind::Removal, &ril, &removal_cfg)
        .expect("sim ok")
        .removal
        .expect("native removal report");
    assert!(r_sfll.error_rate < 0.01, "sfll {}", r_sfll.error_rate);
    assert!(r_ril.error_rate > 0.01, "ril {}", r_ril.error_rate);
}

#[test]
fn scansat_separates_boundary_from_internal_inversion() {
    let host = generators::adder(6);
    let boundary = output_inversion_lock(&host, 7).expect("lock");
    let report = run_attack(AttackKind::ScanSat, &boundary, &cfg())
        .expect("sim ok")
        .report;
    assert!(report.result.succeeded());
    assert_eq!(report.functionally_correct, Some(true), "{report}");
}

#[test]
fn ril_corruption_dwarfs_point_functions() {
    let host = generators::multiplier(5);
    let ril = Obfuscator::new(RilBlockSpec::size_8x8())
        .seed(6)
        .obfuscate(&host)
        .expect("lock");
    let anti = antisat_lock(&host, 8, 7).expect("lock");
    let mut rng = StdRng::seed_from_u64(8);
    let c_ril = output_corruptibility(&ril, 8, 4, &mut rng).expect("sim ok");
    let c_anti = output_corruptibility(&anti, 8, 4, &mut rng).expect("sim ok");
    assert!(c_ril > 5.0 * c_anti, "ril {c_ril} vs antisat {c_anti}");
}

#[test]
fn psca_separates_mram_from_sram() {
    let mram = key_recovery_rate(LutTechnology::Mram, 14, 400, 0.5, 3);
    let sram = key_recovery_rate(LutTechnology::Sram, 14, 400, 0.5, 3);
    assert!(sram > 0.7, "sram {sram}");
    assert!(mram < 0.4, "mram {mram}");
}
