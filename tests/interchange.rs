//! Format-interchange integration: the locked design survives `.bench` and
//! structural-Verilog round trips and stays attackable/verifiable.

use ril_blocks::attacks::satattack::sat_attack;
use ril_blocks::attacks::{Oracle, SatAttackConfig};
use ril_blocks::core::{Obfuscator, RilBlockSpec};
use ril_blocks::netlist::{
    generators, optimize, parse_bench, parse_verilog, write_bench, write_verilog,
};
use ril_blocks::sat::{check_equivalence, EquivOptions, EquivResult};
use std::time::Duration;

#[test]
fn verilog_round_trip_preserves_locked_design() {
    let host = generators::adder(8);
    let locked = Obfuscator::new(RilBlockSpec::size_2x2())
        .blocks(2)
        .seed(19)
        .obfuscate(&host)
        .expect("lock");
    let verilog = write_verilog(&locked.netlist);
    let reparsed = parse_verilog(&verilog).expect("parse generated verilog");
    reparsed.validate().expect("valid");
    assert_eq!(reparsed.key_inputs().len(), locked.key_width());
    // Formal check: the re-parsed locked netlist equals the bench-form one
    // under shared inputs (keys included, matched by name).
    assert_eq!(
        check_equivalence(&locked.netlist, &reparsed, &EquivOptions::default())
            .expect("ports align"),
        EquivResult::Equivalent
    );
}

#[test]
fn attack_works_on_verilog_reimport() {
    let host = generators::adder(8);
    let locked = Obfuscator::new(RilBlockSpec::size_2x2())
        .blocks(2)
        .seed(23)
        .obfuscate(&host)
        .expect("lock");
    let reparsed = parse_verilog(&write_verilog(&locked.netlist)).expect("parse");
    let mut oracle = Oracle::new(&locked).expect("oracle");
    let cfg = SatAttackConfig {
        timeout: Some(Duration::from_secs(45)),
        ..SatAttackConfig::default()
    };
    let report = sat_attack(&reparsed, &mut oracle, &cfg);
    let key = report.result.key().expect("attack succeeds");
    assert!(locked.equivalent_under_key(key, 32).expect("sim ok"));
}

#[test]
fn bench_verilog_bench_round_trip_is_stable() {
    let nl = generators::adder(12);
    let via_verilog = parse_verilog(&write_verilog(&nl)).expect("parse");
    let bench_text = write_bench(&via_verilog);
    let back = parse_bench("rt", &bench_text).expect("parse");
    assert_eq!(
        check_equivalence(&nl, &back, &EquivOptions::default()).expect("ports align"),
        EquivResult::Equivalent
    );
}

#[test]
fn optimization_composes_with_formats_and_equivalence() {
    // Lock → tie SE with a constant via attacker view idiom → optimize →
    // export/import → formally equivalent to the unoptimized form.
    let host = generators::adder(10);
    let locked = Obfuscator::new(RilBlockSpec::size_2x2())
        .blocks(3)
        .seed(29)
        .obfuscate(&host)
        .expect("lock");
    let mut optimized = locked.netlist.clone();
    optimize(&mut optimized).expect("optimize");
    assert_eq!(
        check_equivalence(&locked.netlist, &optimized, &EquivOptions::default())
            .expect("ports align"),
        EquivResult::Equivalent
    );
    let rt = parse_verilog(&write_verilog(&optimized)).expect("parse");
    assert_eq!(
        check_equivalence(&optimized, &rt, &EquivOptions::default()).expect("ports align"),
        EquivResult::Equivalent
    );
}
