//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, benchmark groups with `bench_function` /
//! `bench_with_input`, `sample_size`, `measurement_time` — with a plain
//! mean-of-samples timer instead of criterion's statistical machinery.
//! Each benchmark prints `group/id: mean ± spread over N samples`.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("== {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A named benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter display.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub trait IntoBenchmarkId {
    /// The display text of the id.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

/// A group of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into_text(), |b| f(b));
        self
    }

    /// Runs a benchmark closure over a borrowed input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        self.run(id.into_text(), |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_budget: self.sample_size,
            deadline: Instant::now() + self.measurement_time,
        };
        f(&mut bencher);
        let n = bencher.samples.len().max(1);
        let mean = bencher.samples.iter().sum::<Duration>() / n as u32;
        let spread = bencher
            .samples
            .iter()
            .map(|s| s.abs_diff(mean))
            .max()
            .unwrap_or_default();
        println!(
            "{}/{id}: {:.3?} ± {:.3?} over {n} samples",
            self.name, mean, spread
        );
    }

    /// Ends the group (print-only in the shim).
    pub fn finish(&mut self) {}
}

/// Times one closure repeatedly.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_budget: usize,
    deadline: Instant,
}

impl Bencher {
    /// Runs `routine` `sample_size` times (or until the measurement budget
    /// expires, at least once) and records per-run wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for i in 0..self.sample_budget {
            let t = Instant::now();
            let out = routine();
            self.samples.push(t.elapsed());
            std::hint::black_box(&out);
            drop(out);
            if i > 0 && Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        trivial(&mut c);
    }

    criterion_group!(benches, trivial);

    #[test]
    fn macro_generates_runner() {
        benches();
    }
}
