//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the small API subset it actually uses: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic per seed, which
//! is all the reproduction needs (statistical quality far beyond test
//! requirements, not cryptographic).

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); the tiny bias of
                // a plain widening reduction is irrelevant at test scale.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_single(rng)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64. (The real crate uses ChaCha12; any fixed
    /// high-quality stream works for the reproduction.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..12);
            assert!((3..12).contains(&x));
            let f: f64 = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn floats_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
