//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! range and [`any`] strategies, and the `prop_assert*` macros. Each test
//! runs `cases` deterministic iterations (seed derived from the test name
//! and case index, so failures reproduce); shrinking is not implemented —
//! the failing case's seed and arguments are reported by the panic instead.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`with_cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A source of random values for one property case.
pub type TestRng = StdRng;

/// Drives one property: deterministic per (test name, case index).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name_hash: u64,
}

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            config,
            name_hash: h,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for case `case`.
    pub fn case_rng(&self, case: u32) -> TestRng {
        StdRng::seed_from_u64(self.name_hash ^ ((case as u64) << 32 | 0x5EED))
    }
}

/// Generates values of `Self::Value` from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::Rng::gen(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rand::Rng::gen(rng)
    }
}

/// The [`any`] strategy carrier.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, ProptestConfig,
        Strategy, TestRunner,
    };
}

/// Asserts a condition inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Declares property tests. Supports the real crate's common shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     /// docs
///     #[test]
///     fn prop(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let runner = $crate::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.case_rng(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest {}: case {}/{} failed with inputs: {:?}",
                            stringify!($name),
                            case,
                            runner.cases(),
                            ($(&$arg,)*)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..4, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            prop_assert_ne!(b, !b);
        }
    }

    #[test]
    fn deterministic_between_runners() {
        let r1 = TestRunner::new(ProptestConfig::with_cases(4), "same");
        let r2 = TestRunner::new(ProptestConfig::with_cases(4), "same");
        for case in 0..4 {
            let a: u64 = (0u64..1000).generate(&mut r1.case_rng(case));
            let b: u64 = (0u64..1000).generate(&mut r2.case_rng(case));
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..2) {
                prop_assert!(x > 10);
            }
        }
        always_fails();
    }
}
