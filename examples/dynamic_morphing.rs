//! Dynamic morphing: because RIL-Blocks are MRAM, the key can be rewritten
//! in the field without changing the chip's function. This example morphs a
//! locked design repeatedly — every round yields a *different* correct key
//! — and shows the circuit-level LUT reprogramming underneath (the paper's
//! Fig. 5 AND → NOR scenario).
//!
//! ```sh
//! cargo run --example dynamic_morphing
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use ril_blocks::core::{morph_all, Obfuscator, RilBlockSpec};
use ril_blocks::mram::{MramLut2, TransientSim};
use ril_blocks::netlist::generators;

fn key_hex(bits: &[bool]) -> String {
    bits.chunks(4)
        .map(|c| {
            let mut v = 0u8;
            for (i, &b) in c.iter().enumerate() {
                v |= (b as u8) << i;
            }
            format!("{v:x}")
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Netlist level: morph the whole design ---------------------------
    let host = generators::multiplier(6);
    let mut locked = Obfuscator::new(RilBlockSpec::size_8x8x8())
        .blocks(2)
        .scan_obfuscation(true)
        .seed(5)
        .obfuscate(&host)?;
    println!(
        "locked `{}`: {} key bits\ninitial key: {}",
        host.name(),
        locked.key_width(),
        key_hex(locked.keys.bits())
    );
    let mut rng = StdRng::seed_from_u64(99);
    for round in 1..=5 {
        let report = morph_all(&mut locked, &mut rng);
        let ok = locked.verify(16)?;
        println!(
            "morph {round}: {:>2} bits changed ({} pair swaps, {} reroutes, {} SE rerolls) → key {} — equivalent: {ok}",
            report.bits_changed,
            report.pair_swaps,
            report.output_rerouted,
            report.se_rerolled,
            key_hex(locked.keys.bits()),
        );
        assert!(ok, "morphing must preserve functionality");
    }
    println!("\nAn attacker's partial key knowledge goes stale every morph cycle.");

    // --- Device level: one LUT morphing AND → NOR ------------------------
    println!("\nCircuit-level view (paper Fig. 5): one MRAM LUT reprogrammed in place:");
    let sim = TransientSim::default();
    let mut lut = MramLut2::with_defaults();
    let trace = sim.run(&mut lut, &TransientSim::figure5_schedule());
    print!("{}", trace.to_ascii(80));
    println!("(write AND → read 4 minterms → write NOR → read → set SE key → inverted scan reads)");
    Ok(())
}
