//! Attack lab: play the adversary. Runs the full oracle-guided attack
//! suite against a small RIL-locked design — first without, then with the
//! Scan-Enable defense — and against an SFLL-style baseline for contrast.
//!
//! ```sh
//! RIL_TIMEOUT_SECS=20 cargo run --release --example attack_lab
//! ```

use ril_blocks::attacks::{run_attack, AttackConfig, AttackKind};
use ril_blocks::core::baselines::sfll_lock;
use ril_blocks::core::{KeyBitKind, Obfuscator, RilBlockSpec};
use ril_blocks::netlist::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let host = generators::multiplier(6);
    println!("host: {} ({} gates)\n", host.name(), host.gate_count());
    let cfg = AttackConfig::default();

    // --- Round 1: a lightly locked design, no SE defense ------------------
    let plain = Obfuscator::new(RilBlockSpec::size_2x2())
        .blocks(3)
        .seed(11)
        .obfuscate(&host)?;
    println!(
        "[1] 3 × 2x2 RIL-Blocks, no scan defense ({} key bits)",
        plain.key_width()
    );
    let report = run_attack(AttackKind::Sat, &plain, &cfg)?.report;
    println!("    SAT attack: {report}");
    let report = run_attack(AttackKind::AppSat, &plain, &cfg)?.report;
    println!("    AppSAT:     {report}");
    let removal_cfg = AttackConfig {
        patterns: 32,
        seed: 1,
        ..cfg.clone()
    };
    let removal = run_attack(AttackKind::Removal, &plain, &removal_cfg)?
        .removal
        .expect("removal outcome carries its native report");
    println!(
        "    Removal:    {} gates stripped, salvage error {:.2} % (fails: functions live in the keys)",
        removal.removed_gates,
        removal.error_rate * 100.0
    );

    // --- Round 2: the same lock with the Scan-Enable cell armed -----------
    let mut armed = None;
    for seed in 11..60 {
        let lc = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(3)
            .scan_obfuscation(true)
            .seed(seed)
            .obfuscate(&host)?;
        let has_se = lc
            .keys
            .kinds()
            .iter()
            .zip(lc.keys.bits())
            .any(|(k, &v)| matches!(k, KeyBitKind::ScanEnable { .. }) && v);
        if has_se {
            armed = Some(lc);
            break;
        }
    }
    let armed = armed.expect("a seed with an armed SE key");
    println!("\n[2] Same lock + Scan-Enable defense armed");
    let report = run_attack(AttackKind::Sat, &armed, &cfg)?.report;
    println!("    SAT attack: {report}");
    let report = run_attack(AttackKind::AppSat, &armed, &cfg)?.report;
    println!("    AppSAT:     {report}");
    println!("    (every oracle access asserts SE → corrupted responses → no usable key)");

    // --- Round 3: why point functions are not enough -----------------------
    let sfll = sfll_lock(&generators::adder(8), 8, 3)?;
    println!(
        "\n[3] SFLL-style point-function baseline ({} key bits)",
        sfll.key_width()
    );
    let removal = run_attack(
        AttackKind::Removal,
        &sfll,
        &AttackConfig {
            patterns: 32,
            seed: 2,
            ..cfg
        },
    )?
    .removal
    .expect("removal outcome carries its native report");
    println!(
        "    Removal+bypass: salvage error {:.4} % — the restore unit peels right off",
        removal.error_rate * 100.0
    );
    Ok(())
}
