//! Side-channel lab: mount CPA/DPA power attacks against LUT key storage.
//! An SRAM LUT's data-dependent read energy gives up its truth table in a
//! few hundred traces; the paper's complementary-cell MRAM LUT draws the
//! same current for 0 and 1 and starves the attack.
//!
//! ```sh
//! cargo run --example side_channel_lab
//! ```

use ril_blocks::sca::{
    assess, collect_traces, cpa_attack, key_recovery_rate, LutTechnology, TVLA_THRESHOLD,
};

fn main() {
    let secret = 0b1101u8; // the hidden LUT configuration (NOT A OR B)
    let noise = 0.5; // fJ of rail-measurement noise (1σ)
    println!("victim LUT secret: {secret:04b}, measurement noise {noise} fJ\n");

    for tech in [LutTechnology::Sram, LutTechnology::Mram] {
        println!("--- {tech:?} LUT ---");
        let trace = collect_traces(tech, secret, 800, noise, 42);
        let result = cpa_attack(&trace);
        println!(
            "CPA over {} traces: best hypothesis {:04b} (margin {:.3}) → {}",
            trace.len(),
            result.best_tt,
            result.margin(),
            if result.best_tt == secret {
                "KEY RECOVERED"
            } else {
                "wrong guess"
            }
        );
        let leak = assess(tech, 1000, noise, 7);
        println!(
            "TVLA t-test: |t| = {:.2} (threshold {TVLA_THRESHOLD}) → {}",
            leak.t_statistic.abs(),
            if leak.leaks {
                "LEAKS"
            } else {
                "no first-order leak"
            }
        );
        let rate = key_recovery_rate(tech, 28, 500, noise, 3);
        println!("recovery rate over 28 victims: {:.0} %\n", rate * 100.0);
    }
    println!(
        "The MRAM LUT's read path always stacks one parallel and one anti-parallel\n\
         MTJ (R_P + R_AP), so the rail current is value-independent up to a ~0.2 %\n\
         transistor mismatch — below the noise floor of a realistic measurement."
    );
}
