//! Quickstart: lock a benchmark circuit with RIL-Blocks, verify it, and
//! export the locked netlist in `.bench` format.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ril_blocks::core::{Obfuscator, RilBlockSpec};
use ril_blocks::netlist::{generators, write_bench};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A host design — the synthetic c7552-class benchmark (a real
    //    multiplier/adder/comparator/parity datapath). You can also load
    //    your own ISCAS `.bench` file with `ril_netlist::parse_bench`.
    let host = generators::benchmark("c7552").expect("bundled benchmark");
    println!("host: {} — {}", host.name(), host.stats());

    // 2. Lock it: three 8×8×8 RIL-Blocks with the Scan-Enable defense.
    let spec = RilBlockSpec::size_8x8x8();
    let locked = Obfuscator::new(spec)
        .blocks(3)
        .scan_obfuscation(true)
        .seed(2021)
        .obfuscate(&host)?;
    println!(
        "locked: {} key bits across {} blocks, +{} gates",
        locked.key_width(),
        locked.blocks,
        locked.gate_overhead()
    );

    // 3. The correct key (tamper-proof memory content) unlocks it exactly.
    assert!(locked.verify(64)?);
    println!("verified: locked(correct key) ≡ original over 4096 random patterns");

    // 4. A wrong key does not.
    let mut wrong = locked.keys.bits().to_vec();
    wrong[0] = !wrong[0];
    wrong[7] = !wrong[7];
    if !locked.equivalent_under_key(&wrong, 64)? {
        println!("a 2-bit-off key already corrupts the outputs — high corruptibility");
    }

    // 5. Export the locked netlist for external tools.
    let bench_text = write_bench(&locked.netlist);
    std::fs::write("c7552_locked.bench", &bench_text)?;
    println!(
        "locked netlist written to c7552_locked.bench ({} lines)",
        bench_text.lines().count()
    );
    Ok(())
}
