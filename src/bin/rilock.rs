//! `rilock` — command-line front end for the RIL-Blocks suite.
//!
//! ```text
//! rilock info   <design.bench>
//! rilock lock   <design.bench|.v> [--spec 8x8x8] [--blocks 3] [--scan]
//!               [--seed N] [--out locked.bench] [--key key.txt]
//! rilock attack <locked.bench> --key key.txt [--timeout SECS] [--appsat]
//! rilock morph  <locked.bench> --key key.txt [--seed N]
//! rilock serve  [--addr HOST:PORT] [--addr-file PATH] [--workers N]
//!               [--morph-queries K] [--morph-ms T] [--query-limit N]
//! rilock remote-attack <HOST:PORT> [--benchmark NAME] [--spec 2x2]
//!               [--blocks N] [--seed N] [--scan] [--zero-se]
//!               [--timeout SECS] [--appsat] [--shutdown]
//! ```
//!
//! The key file is one `0`/`1` character per key bit, netlist
//! `KEYINPUT` order (what `lock` writes). `attack` builds the activated-IC
//! oracle from the locked netlist plus that key, then plays the adversary.
//! `serve` hosts activated chips over TCP (with the morph scheduler when
//! `--morph-queries`/`--morph-ms` are given); `remote-attack` activates a
//! chip on such a server and plays the adversary across the network.

use ril_blocks::attacks::appsat::appsat_attack;
use ril_blocks::attacks::satattack::sat_attack;
use ril_blocks::attacks::{AppSatConfig, Oracle, SatAttackConfig};
use ril_blocks::core::key::{KeyBitKind, KeyStore};
use ril_blocks::core::{LockedCircuit, Obfuscator, RilBlockSpec};
use ril_blocks::netlist::{parse_bench, parse_verilog, write_bench, write_verilog, Netlist};
use ril_blocks::serve::{ClientConfig, DesignSpec, RemoteOracle, ServeConfig, Server};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("rilock: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "info" => info(&args[1..]),
        "lock" => lock(&args[1..]),
        "attack" => attack(&args[1..]),
        "morph" => morph(&args[1..]),
        "serve" => serve(&args[1..]),
        "remote-attack" => remote_attack(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  rilock info   <design.bench>\n  rilock lock   <design.bench|.v> [--spec 8x8x8] [--blocks 3] [--scan] [--seed N] [--out locked.bench] [--key key.txt]\n  rilock attack <locked.bench> --key key.txt [--timeout SECS] [--appsat]\n  rilock morph  <locked.bench> --key key.txt [--seed N]\n  rilock serve  [--addr HOST:PORT] [--addr-file PATH] [--workers N] [--morph-queries K] [--morph-ms T] [--query-limit N]\n  rilock remote-attack <HOST:PORT> [--benchmark NAME] [--spec 2x2] [--blocks N] [--seed N] [--scan] [--zero-se] [--timeout SECS] [--appsat] [--shutdown]".to_string()
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn load_netlist(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design");
    if path.ends_with(".v") || path.ends_with(".sv") {
        parse_verilog(&text).map_err(|e| format!("parse {path}: {e}"))
    } else {
        parse_bench(name, &text).map_err(|e| format!("parse {path}: {e}"))
    }
}

fn save_netlist(path: &str, nl: &Netlist) -> Result<(), String> {
    let text = if path.ends_with(".v") || path.ends_with(".sv") {
        write_verilog(nl)
    } else {
        write_bench(nl)
    };
    std::fs::write(path, text).map_err(|e| e.to_string())
}

fn load_key(path: &str, expected: usize) -> Result<Vec<bool>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let bits: Vec<bool> = text
        .chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("bad key character `{other}` in {path}")),
        })
        .collect::<Result<_, _>>()?;
    if bits.len() != expected {
        return Err(format!(
            "key width mismatch: {path} has {} bits, netlist has {expected} key inputs",
            bits.len()
        ));
    }
    Ok(bits)
}

fn info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(usage)?;
    let nl = load_netlist(path)?;
    println!("{}: {}", nl.name(), nl.stats());
    println!("transistor estimate: {}", nl.transistor_estimate());
    if !nl.key_inputs().is_empty() {
        println!("locked design: {} key inputs", nl.key_inputs().len());
    }
    Ok(())
}

fn lock(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(usage)?;
    let nl = load_netlist(path)?;
    let spec_str = flag_value(args, "--spec").unwrap_or("8x8x8");
    let spec = RilBlockSpec::parse(spec_str)
        .ok_or_else(|| format!("bad --spec `{spec_str}` (expected e.g. 2x2, 8x8, 8x8x8)"))?;
    let blocks: usize = flag_value(args, "--blocks")
        .unwrap_or("3")
        .parse()
        .map_err(|_| "bad --blocks".to_string())?;
    let seed: u64 = flag_value(args, "--seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "bad --seed".to_string())?;
    let out_path = flag_value(args, "--out").unwrap_or("locked.bench");
    let key_path = flag_value(args, "--key").unwrap_or("key.txt");

    let locked = Obfuscator::new(spec)
        .blocks(blocks)
        .scan_obfuscation(has_flag(args, "--scan"))
        .seed(seed)
        .obfuscate(&nl)
        .map_err(|e| format!("obfuscation failed: {e}"))?;
    if !locked.verify(32).map_err(|e| e.to_string())? {
        return Err("internal error: locked circuit failed verification".into());
    }
    save_netlist(out_path, &locked.netlist)?;
    let key_text: String = locked
        .keys
        .bits()
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    std::fs::write(key_path, key_text).map_err(|e| e.to_string())?;
    println!(
        "locked {} with {blocks} × {spec}{}: {} key bits, +{} gates",
        nl.name(),
        if locked.spec.scan_obfuscation {
            " (+SE)"
        } else {
            ""
        },
        locked.key_width(),
        locked.gate_overhead(),
    );
    println!("wrote {out_path} and {key_path}");
    Ok(())
}

/// Reconstructs a LockedCircuit-ish pair for CLI flows: the locked netlist
/// plus its correct key, with an identity "original" (good enough for the
/// oracle; functional verification needs the pristine design and is
/// reported only when the original is available to the caller).
fn locked_from_files(path: &str, key_path: &str) -> Result<(Netlist, Vec<bool>), String> {
    let nl = load_netlist(path)?;
    if nl.key_inputs().is_empty() {
        return Err(format!("{path} has no KEYINPUTs — not a locked design"));
    }
    let key = load_key(key_path, nl.key_inputs().len())?;
    Ok((nl, key))
}

fn attack(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(usage)?;
    let key_path = flag_value(args, "--key").ok_or("--key is required for attack")?;
    let (nl, key) = locked_from_files(path, key_path)?;
    let timeout: u64 = flag_value(args, "--timeout")
        .unwrap_or("60")
        .parse()
        .map_err(|_| "bad --timeout".to_string())?;

    // Build the activated chip: the locked netlist with the key burned in.
    let mut keys = KeyStore::new();
    for &b in &key {
        keys.push(KeyBitKind::Baseline, b);
    }
    let locked = LockedCircuit {
        original: nl.clone(),
        netlist: nl.clone(),
        keys,
        spec: RilBlockSpec::size_2x2(),
        blocks: 0,
        block_meta: Vec::new(),
    };
    let mut oracle = Oracle::new(&locked).map_err(|e| e.to_string())?;
    let view = ril_blocks::attacks::attacker_view(&locked);
    let report = if has_flag(args, "--appsat") {
        let cfg = AppSatConfig {
            timeout: Some(Duration::from_secs(timeout)),
            ..AppSatConfig::default()
        };
        appsat_attack(&view, &mut oracle, &cfg)
    } else {
        let cfg = SatAttackConfig {
            timeout: Some(Duration::from_secs(timeout)),
            ..SatAttackConfig::default()
        };
        sat_attack(&view, &mut oracle, &cfg)
    };
    println!("{report}");
    if let Some(found) = report.result.key() {
        let matches = found.iter().zip(&key).filter(|(a, b)| a == b).count();
        println!(
            "recovered key agrees with the stored key on {matches}/{} bits",
            key.len()
        );
    }
    Ok(())
}

/// Hosts the activation service until the process is killed or a client
/// sends the `shutdown` op.
fn serve(args: &[String]) -> Result<(), String> {
    let mut cfg = ServeConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:0")
            .to_string(),
        ..ServeConfig::default()
    };
    if let Some(n) = flag_value(args, "--workers") {
        cfg.workers = n.parse().map_err(|_| "bad --workers".to_string())?;
    }
    if let Some(k) = flag_value(args, "--morph-queries") {
        cfg.morph_queries = Some(k.parse().map_err(|_| "bad --morph-queries".to_string())?);
    }
    if let Some(t) = flag_value(args, "--morph-ms") {
        let ms: u64 = t.parse().map_err(|_| "bad --morph-ms".to_string())?;
        cfg.morph_interval = Some(Duration::from_millis(ms));
    }
    if let Some(n) = flag_value(args, "--query-limit") {
        cfg.query_limit = Some(n.parse().map_err(|_| "bad --query-limit".to_string())?);
    }

    let handle = Server::start(cfg).map_err(|e| format!("bind failed: {e}"))?;
    println!("ril-serve listening on {}", handle.addr());
    // Scripts discover the OS-assigned port through --addr-file: the file
    // appears only once the listener is live, so "file exists" doubles as
    // the readiness signal.
    if let Some(path) = flag_value(args, "--addr-file") {
        std::fs::write(path, handle.addr().to_string())
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    handle.wait(); // blocks until a client's `shutdown` op drains us
    println!("ril-serve drained");
    Ok(())
}

fn parse_design(args: &[String]) -> Result<DesignSpec, String> {
    Ok(DesignSpec {
        benchmark: flag_value(args, "--benchmark")
            .unwrap_or("c7552")
            .to_string(),
        spec: flag_value(args, "--spec").unwrap_or("2x2").to_string(),
        blocks: flag_value(args, "--blocks")
            .unwrap_or("2")
            .parse()
            .map_err(|_| "bad --blocks".to_string())?,
        seed: flag_value(args, "--seed")
            .unwrap_or("0")
            .parse()
            .map_err(|_| "bad --seed".to_string())?,
        scan: has_flag(args, "--scan"),
        zero_se: has_flag(args, "--zero-se"),
    })
}

/// Activates a chip on a remote server and attacks it across the network.
/// The attacker view and the ground-truth check both come from rebuilding
/// the deterministic design locally.
fn remote_attack(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or_else(usage)?;
    let design = parse_design(args)?;
    let timeout: u64 = flag_value(args, "--timeout")
        .unwrap_or("60")
        .parse()
        .map_err(|_| "bad --timeout".to_string())?;

    let locked = design.build()?;
    let view = ril_blocks::attacks::attacker_view(&locked);
    let mut oracle = RemoteOracle::activate(addr.clone(), ClientConfig::default(), &design)
        .map_err(|e| format!("activation on {addr} failed: {e}"))?;
    println!(
        "activated chip {} on {addr} ({} inputs, {} key bits)",
        oracle.chip(),
        view.data_inputs().len(),
        locked.keys.bits().len(),
    );

    let report = if has_flag(args, "--appsat") {
        let cfg = AppSatConfig {
            timeout: Some(Duration::from_secs(timeout)),
            ..AppSatConfig::default()
        };
        appsat_attack(&view, &mut oracle, &cfg)
    } else {
        let cfg = SatAttackConfig {
            timeout: Some(Duration::from_secs(timeout)),
            ..SatAttackConfig::default()
        };
        sat_attack(&view, &mut oracle, &cfg)
    };
    println!("{report}");
    if let Some(key) = report.result.key() {
        let correct = locked
            .equivalent_under_key(key, 32)
            .map_err(|e| e.to_string())?;
        println!("recovered key functionally correct: {correct}");
    }
    use ril_blocks::attacks::OracleSource;
    println!(
        "oracle: {} queries, generation {} ({} re-key(s) observed mid-attack)",
        oracle.queries(),
        oracle.generation().unwrap_or(0),
        oracle.generation_changes(),
    );

    if has_flag(args, "--shutdown") {
        oracle
            .client()
            .shutdown_server()
            .map_err(|e| format!("shutdown failed: {e}"))?;
        println!("server drained");
    }
    Ok(())
}

fn morph(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or_else(usage)?;
    let key_path = flag_value(args, "--key").ok_or("--key is required for morph")?;
    let (nl, _key) = locked_from_files(path, key_path)?;
    let seed: u64 = flag_value(args, "--seed")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --seed".to_string())?;
    // Morphing needs block metadata, which .bench files do not carry; the
    // CLI therefore re-locks from scratch when given a raw design, and
    // explains the limitation for imported locked files.
    let _ = (nl, seed);
    Err(
        "morphing requires block metadata that .bench files do not carry; \
         morph in-process via `ril_core::morph_all` on the LockedCircuit \
         returned by the Obfuscator (see examples/dynamic_morphing.rs)"
            .into(),
    )
}
