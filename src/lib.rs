//! # ril-blocks — RIL-Blocks dynamic hardware obfuscation suite
//!
//! A full reproduction of *"Securing Hardware via Dynamic Obfuscation
//! Utilizing Reconfigurable Interconnect and Logic Blocks"* (DAC 2021):
//! MRAM-LUT + banyan-routing obfuscation, the oracle-guided attack suite it
//! defends against, and the device/side-channel substrates behind the
//! paper's evaluation.
//!
//! This meta-crate re-exports the workspace members:
//!
//! * [`netlist`] — gate-level netlists, `.bench` I/O, simulation, synthetic
//!   ISCAS/CEP benchmark generators;
//! * [`sat`] — a from-scratch CDCL SAT solver with Tseitin encoding and
//!   BVA preprocessing;
//! * [`mram`] — behavioural STT-MRAM LUT circuit models (transient,
//!   Monte-Carlo, energy);
//! * [`core`] — the RIL-Block obfuscation primitives, insertion, dynamic
//!   morphing, metrics and baseline locks;
//! * [`attacks`] — SAT attack, AppSAT, removal, ScanSAT, preprocessing;
//! * [`sca`] — power-trace synthesis and DPA/CPA attacks;
//! * [`serve`] — the networked activation service: hosted chips behind a
//!   framed TCP protocol, a live morph scheduler, and the
//!   [`serve::RemoteOracle`] adapter that points the attack suite at it.
//!
//! ## Quickstart
//!
//! ```
//! use ril_blocks::core::{Obfuscator, RilBlockSpec};
//! use ril_blocks::netlist::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let host = generators::benchmark("c7552").expect("known benchmark");
//! let locked = Obfuscator::new(RilBlockSpec::size_8x8x8())
//!     .blocks(3)
//!     .scan_obfuscation(true)
//!     .seed(2021)
//!     .obfuscate(&host)?;
//! assert!(locked.verify(8)?);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use ril_attacks as attacks;
pub use ril_core as core;
pub use ril_mram as mram;
pub use ril_netlist as netlist;
pub use ril_sat as sat;
pub use ril_sca as sca;
pub use ril_serve as serve;
